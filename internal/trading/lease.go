package trading

import (
	"context"
	"fmt"
	"sync"
	"time"

	"autoadapt/internal/clock"
)

// Offer liveness: leases, the reaper, and quarantine.
//
// The paper's trader assumes exported offers describe live services, but a
// crashed or partitioned agent leaves its offer registered forever and
// every query keeps returning a dead object ref. This file makes offers
// *leases*: an exporter must renew its offer within the lease TTL or the
// offer stops matching (lazily, the moment the lease is past due) and is
// eventually deleted by the reaper. Independently, offers whose dynamic
// properties fail to resolve on several consecutive queries are
// *quarantined* — kept registered, still probed, but excluded from query
// results until a resolution succeeds or the exporter renews.
//
// Expiry is enforced in two layers so correctness never depends on reaper
// scheduling: Query, OfferCount, Modify, and Withdraw all check the lease
// against the trader's clock on every call (lazy expiry), while the reaper
// goroutine merely garbage-collects records that stayed expired. Renewing
// an expired-but-unreaped offer resurrects it deterministically — the
// record, its ID, and its properties are exactly as before expiry.

// DefaultQuarantineThreshold is how many consecutive queries must fail to
// resolve an offer's dynamic properties before the offer is quarantined.
const DefaultQuarantineThreshold = 3

// offerRecord is the trader's bookkeeping around one exported Offer:
// the lease deadline and the quarantine counters. All fields are guarded
// by Trader.mu; the embedded offer's fields other than Props are immutable
// after export.
type offerRecord struct {
	offer       *Offer
	expires     time.Time // lease deadline; zero = no lease
	fails       int       // consecutive queries with failed resolutions
	quarantined bool
}

// expired reports whether the record's lease is past due at now. Records
// without a lease never expire.
func (r *offerRecord) expired(now time.Time) bool {
	return !r.expires.IsZero() && !now.Before(r.expires)
}

// SetClock replaces the trader's time source (default clock.Real{}).
// Call it before exporting offers; tests use a clock.Sim to drive lease
// expiry deterministically.
func (t *Trader) SetClock(c clock.Clock) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clk = c
}

// SetLeaseTTL sets the lease granted to offers by Export and Renew.
// 0 (the default) disables leasing: offers live until withdrawn. Changing
// the TTL affects subsequent exports and renewals only; existing leases
// keep their deadlines.
func (t *Trader) SetLeaseTTL(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if d < 0 {
		d = 0
	}
	t.leaseTTL = d
}

// LeaseTTL reports the current lease TTL (0 = leasing disabled).
func (t *Trader) LeaseTTL() time.Duration {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.leaseTTL
}

// SetQuarantineThreshold sets how many consecutive resolution-failing
// queries quarantine an offer (default DefaultQuarantineThreshold).
// Values below 1 disable quarantining entirely.
func (t *Trader) SetQuarantineThreshold(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.quarThreshold = n
}

// Renew extends the lease of an offer by the trader's lease TTL from now,
// clears its quarantine state, and resurrects it if it had expired but was
// not yet reaped. Renewing an offer the trader does not know (never
// exported, withdrawn, or already reaped) reports ErrUnknownOffer — the
// exporter must re-export from scratch.
func (t *Trader) Renew(id string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	rec, ok := t.offers[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownOffer, id)
	}
	if t.leaseTTL > 0 {
		rec.expires = t.clk.Now().Add(t.leaseTTL)
	} else {
		rec.expires = time.Time{}
	}
	if tm := t.tm.Load(); tm != nil {
		tm.renewals.Inc()
		if rec.quarantined {
			tm.rehabilitated.Inc()
		}
	}
	rec.fails = 0
	rec.quarantined = false
	return nil
}

// Quarantined reports whether the offer exists and is currently
// quarantined (for diagnostics/tests).
func (t *Trader) Quarantined(id string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rec, ok := t.offers[id]
	return ok && rec.quarantined
}

// Reap deletes every offer whose lease is past due and returns how many
// were removed. Queries already ignore expired offers, so Reap is pure
// garbage collection; it is exported for tests and manual housekeeping —
// production traders run StartReaper instead.
func (t *Trader) Reap() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clk.Now()
	n := 0
	for id, rec := range t.offers {
		if rec.expired(now) {
			delete(t.offers, id)
			n++
		}
	}
	if tm := t.tm.Load(); tm != nil && n > 0 {
		tm.reaped.Add(uint64(n))
	}
	return n
}

// StartReaper runs Reap every interval on the trader's clock until the
// returned stop function is called. stop is idempotent and blocks until
// the reaper goroutine has exited.
func (t *Trader) StartReaper(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	stopCh := make(chan struct{})
	done := make(chan struct{})
	// The first timer is armed before StartReaper returns, so a caller
	// driving a simulated clock can Advance immediately afterwards.
	t.mu.RLock()
	clk := t.clk
	t.mu.RUnlock()
	ch, cancel := clk.After(interval)
	go func() {
		defer close(done)
		for {
			select {
			case <-ch:
				t.Reap()
			case <-stopCh:
				cancel()
				return
			}
			t.mu.RLock()
			clk := t.clk
			t.mu.RUnlock()
			ch, cancel = clk.After(interval)
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(stopCh)
			<-done
		})
	}
}

// noteResolveOutcomes folds one query's per-offer resolution outcomes into
// the quarantine counters: a query in which every attempted resolution of
// an offer answered rehabilitates it (fails reset, quarantine lifted),
// while a query with at least one failed resolution counts against it and
// quarantines it at the threshold. Queries that resolved nothing for an
// offer leave its state untouched, as does a query whose ctx was canceled
// (the failures indict the caller, not the monitors).
func (t *Trader) noteResolveOutcomes(ctx context.Context, candidates []offerView, outcomes []resolveOutcome) {
	// Check under the read lock first and upgrade only when some record
	// actually needs mutating. In the steady state — healthy monitors, no
	// quarantine counters to reset — every outcome is resolveAllOK against
	// records already at fails == 0, so hot read-only queries never
	// serialize on the trader's write lock.
	t.mu.RLock()
	threshold := t.quarThreshold
	dirty := false
	if threshold >= 1 && ctx.Err() == nil {
		for i := range candidates {
			switch outcomes[i] {
			case resolveSomeFailed:
				dirty = true
			case resolveAllOK:
				if rec, ok := t.offers[candidates[i].o.ID]; ok && (rec.fails != 0 || rec.quarantined) {
					dirty = true
				}
			}
			if dirty {
				break
			}
		}
	}
	t.mu.RUnlock()
	if !dirty {
		return // nothing to record: no liveness evidence, no write lock
	}
	tm := t.tm.Load()
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range candidates {
		rec, ok := t.offers[candidates[i].o.ID]
		if !ok {
			continue // withdrawn or reaped mid-query
		}
		switch outcomes[i] {
		case resolveAllOK:
			if tm != nil && rec.quarantined {
				tm.rehabilitated.Inc()
			}
			rec.fails = 0
			rec.quarantined = false
		case resolveSomeFailed:
			rec.fails++
			if rec.fails >= threshold && !rec.quarantined {
				rec.quarantined = true
				if tm != nil {
					tm.quarantined.Inc()
				}
			}
		}
	}
}
