package trading

import (
	"context"

	"autoadapt/internal/wire"
)

// Directory is the client-facing surface of the trading service: everything
// an agent, a smart proxy, or a rebinder needs from a trader. It is
// implemented by *Lookup (one remote trader), by Local (an in-process
// trader), and by the sharded routing client (internal/trading/shard), so
// distribution policy — one trader, many shards, replicas — is decoupled
// from the components that use it.
type Directory interface {
	// Query finds offers of serviceType matching constraint, ordered by
	// preference (see Trader.Query).
	Query(ctx context.Context, serviceType, constraint, preference string, maxResults int) ([]QueryResult, error)
	// Export registers an offer and returns its offer id.
	Export(ctx context.Context, serviceType string, ref wire.ObjRef, props map[string]PropValue) (string, error)
	// Withdraw removes an offer by id.
	Withdraw(ctx context.Context, offerID string) error
	// Modify replaces an offer's properties.
	Modify(ctx context.Context, offerID string, props map[string]PropValue) error
	// Renew extends an offer's lease; ErrUnknownOffer (wrapped) means the
	// exporter must re-export from scratch.
	Renew(ctx context.Context, offerID string) error
	// AddType registers a service type.
	AddType(ctx context.Context, st ServiceType) error
}

var _ Directory = (*Lookup)(nil)
var _ Directory = Local{}

// Local adapts an in-process *Trader to the Directory interface, so code
// written against Directory (the shard router, tests, single-process
// deployments) can talk to a trader without an ORB hop.
type Local struct{ T *Trader }

// Query implements Directory.
func (l Local) Query(ctx context.Context, serviceType, constraint, preference string, maxResults int) ([]QueryResult, error) {
	return l.T.Query(ctx, serviceType, constraint, preference, maxResults)
}

// Export implements Directory.
func (l Local) Export(_ context.Context, serviceType string, ref wire.ObjRef, props map[string]PropValue) (string, error) {
	return l.T.Export(serviceType, ref, props)
}

// Withdraw implements Directory.
func (l Local) Withdraw(_ context.Context, offerID string) error { return l.T.Withdraw(offerID) }

// Modify implements Directory.
func (l Local) Modify(_ context.Context, offerID string, props map[string]PropValue) error {
	return l.T.Modify(offerID, props)
}

// Renew implements Directory.
func (l Local) Renew(_ context.Context, offerID string) error { return l.T.Renew(offerID) }

// AddType implements Directory.
func (l Local) AddType(_ context.Context, st ServiceType) error {
	l.T.AddType(st)
	return nil
}

// Stats implements StatsProvider.
func (l Local) Stats(context.Context) (TraderStats, error) { return l.T.Stats(), nil }

// StatsProvider is the optional Directory extension exposing a trader's
// load instrumentation. The shard manager polls it to decide replication.
type StatsProvider interface {
	Stats(ctx context.Context) (TraderStats, error)
}

// SortByPreference re-sorts results by preference. The shard router uses it
// to merge preference-ordered result streams from several shards back into
// one globally ordered list; per-offer snapshots already hold the values
// the preference references, so no re-resolution happens.
func SortByPreference(preference string, results []QueryResult) error {
	pref, err := cachedPreference(preference)
	if err != nil {
		return err
	}
	return pref.Sort(results)
}
