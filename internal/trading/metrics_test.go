package trading

import (
	"context"
	"strings"
	"testing"
	"time"

	"autoadapt/internal/clock"
	"autoadapt/internal/metrics"
)

// TestTraderMetricsQueryPath drives the instrumented query path through
// success, resolution failure, quarantine, and rehabilitation, and checks
// every counter lands where the lifecycle says it should.
func TestTraderMetricsQueryPath(t *testing.T) {
	tr, res, id := newFlakyTrader(t)
	reg := metrics.NewRegistry()
	tr.SetMetrics(reg)

	// One healthy query: latency and resolve fan-out observed, no errors.
	if n := queryLoad(t, tr); n != 1 {
		t.Fatalf("healthy query matched %d offers", n)
	}
	if got := reg.Histogram("trading_query_us").Snapshot().Count; got != 1 {
		t.Errorf("query latency samples = %d, want 1", got)
	}
	if got := reg.Histogram("trading_resolve_tasks").Snapshot().Count; got != 1 {
		t.Errorf("resolve fan-out samples = %d, want 1", got)
	}
	if got := reg.Counter("trading_resolve_errors").Value(); got != 0 {
		t.Errorf("resolve errors = %d, want 0", got)
	}

	// Three failing queries quarantine the offer; each counts its failed
	// resolution, the transition counts once.
	res.setFail(true)
	for i := 0; i < 3; i++ {
		queryLoad(t, tr)
	}
	if got := reg.Counter("trading_resolve_errors").Value(); got != 3 {
		t.Errorf("resolve errors = %d, want 3", got)
	}
	if got := reg.Counter("trading_quarantined").Value(); got != 1 {
		t.Errorf("quarantined = %d, want 1", got)
	}

	// Recovery probe rehabilitates.
	res.setFail(false)
	queryLoad(t, tr)
	if got := reg.Counter("trading_rehabilitated").Value(); got != 1 {
		t.Errorf("rehabilitated = %d, want 1", got)
	}
	if tr.Quarantined(id) {
		t.Fatal("offer still quarantined after probe")
	}

	// A query against an unknown type is a query error.
	if _, err := tr.Query(context.Background(), "NoSuchType", "", "", 0); err == nil {
		t.Fatal("expected unknown-type error")
	}
	if got := reg.Counter("trading_query_errors").Value(); got != 1 {
		t.Errorf("query errors = %d, want 1", got)
	}

	// The registered gauges see the live trader.
	text := reg.Text()
	if !strings.Contains(text, "trading_offers 1\n") {
		t.Errorf("exposition missing trading_offers 1:\n%s", text)
	}
}

// TestTraderMetricsLeaseChurn checks renewals, reaping, and withdrawals.
func TestTraderMetricsLeaseChurn(t *testing.T) {
	tr := NewTrader(nil)
	reg := metrics.NewRegistry()
	tr.SetMetrics(reg)
	clk := clock.NewSim(time.Unix(0, 0))
	tr.SetClock(clk)
	tr.SetLeaseTTL(time.Minute)
	tr.AddType(ServiceType{Name: "S"})

	id1, err := tr.Export("S", serverRef(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := tr.Export("S", serverRef(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Renew(id1); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("trading_renewals").Value(); got != 1 {
		t.Errorf("renewals = %d, want 1", got)
	}
	if err := tr.Withdraw(id2); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("trading_withdrawals").Value(); got != 1 {
		t.Errorf("withdrawals = %d, want 1", got)
	}
	clk.Advance(2 * time.Minute) // id1's renewed lease is also past due
	if n := tr.Reap(); n != 1 {
		t.Fatalf("reaped %d offers, want 1", n)
	}
	if got := reg.Counter("trading_reaped").Value(); got != 1 {
		t.Errorf("reaped counter = %d, want 1", got)
	}
	// Detach: subsequent activity must not move the counters.
	tr.SetMetrics(nil)
	id3, err := tr.Export("S", serverRef(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Renew(id3); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("trading_renewals").Value(); got != 1 {
		t.Errorf("renewals after detach = %d, want 1", got)
	}
}

// TestServantMetricsOp pins the wire surface: the trader servant answers
// the metrics operation with the registry text when attached and an app
// error when not.
func TestServantMetricsOp(t *testing.T) {
	tr := NewTrader(nil)
	reg := metrics.NewRegistry()
	tr.SetMetrics(reg)
	reg.Counter("trading_test_marker").Add(7)

	s := NewServant(tr)
	if _, err := s.Invoke("metrics", nil); err == nil {
		t.Fatal("metrics op without WithMetricsText should fail")
	}
	s.WithMetricsText(reg.Text)
	rs, err := s.Invoke("metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	text, ok := rs[0].AsString()
	if !ok {
		t.Fatalf("metrics op reply is not a string: %v", rs[0])
	}
	if !strings.Contains(text, "trading_test_marker 7\n") {
		t.Errorf("metrics op reply missing marker:\n%s", text)
	}
}
