package trading

import (
	"context"
	"testing"
	"time"

	"autoadapt/internal/wire"
)

// TestQueryHealthySkipsWriteLock pins the hot-read-path guarantee: a query
// whose dynamic resolutions all succeed against offers with clean
// quarantine state records nothing, so it must complete while another
// goroutine holds the trader's read lock — taking the write lock would
// deadlock behind our RLock and trip the timeout.
func TestQueryHealthySkipsWriteLock(t *testing.T) {
	tr, _ := newLoadedTrader([]float64{0.5, 1.5}, []bool{false, false})

	// Prime once so any initial fails/quarantined state is settled.
	if _, err := tr.Query(context.Background(), "LoadShared", "LoadAvg < 99", "min LoadAvg", 0); err != nil {
		t.Fatal(err)
	}

	tr.mu.RLock()
	defer tr.mu.RUnlock()
	done := make(chan error, 1)
	go func() {
		_, err := tr.Query(context.Background(), "LoadShared", "LoadAvg < 99", "min LoadAvg", 0)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("query under external RLock: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("query blocked on the write lock despite having nothing to record")
	}
}

// TestQueryFailureStillQuarantines proves the RLock-first rewrite still
// upgrades when there is something to record.
func TestQueryFailureStillQuarantines(t *testing.T) {
	res := &stubResolver{values: map[string]wire.Value{}}
	tr := NewTrader(res)
	tr.AddType(ServiceType{Name: "S"})
	id, err := tr.Export("S", serverRef(0), map[string]PropValue{
		"LoadAvg": {Dynamic: monitorRef(0)}, // not in res.values: resolution fails
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < DefaultQuarantineThreshold; i++ {
		if _, err := tr.Query(context.Background(), "S", "LoadAvg < 1", "", 0); err != nil {
			t.Fatal(err)
		}
	}
	if !tr.Quarantined(id) {
		t.Fatalf("offer %s not quarantined after %d failing queries", id, DefaultQuarantineThreshold)
	}
}

func TestTraderStats(t *testing.T) {
	tr, _ := newLoadedTrader([]float64{0.5, 1.5}, []bool{false, false})
	before := tr.Stats()
	if before.Exports != 2 || before.Offers != 2 {
		t.Fatalf("exports/offers = %d/%d, want 2/2", before.Exports, before.Offers)
	}
	for i := 0; i < 5; i++ {
		if _, err := tr.Query(context.Background(), "LoadShared", "", "min LoadAvg", 0); err != nil {
			t.Fatal(err)
		}
	}
	after := tr.Stats()
	if after.Queries-before.Queries != 5 {
		t.Fatalf("queries delta = %d, want 5", after.Queries-before.Queries)
	}
	if after.QueryNanos <= before.QueryNanos {
		t.Fatalf("query nanos did not advance: %d -> %d", before.QueryNanos, after.QueryNanos)
	}
	if lat := after.MeanLatency(before); lat <= 0 {
		t.Fatalf("mean latency = %v, want > 0", lat)
	}
	if rps := after.RPS(before, time.Second); rps != 5 {
		t.Fatalf("rps over 1s = %v, want 5", rps)
	}
}

func TestStatsWireRoundTrip(t *testing.T) {
	in := TraderStats{Queries: 7, Exports: 3, QueryNanos: 12345, Offers: 9}
	out, err := statsFromWire(statsToWire(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}
