// Package wire defines the dynamically typed value model shared by every
// layer of the infrastructure, and a binary codec for moving those values
// (and ORB request/reply frames) across a network.
//
// The paper's middleware is built on CORBA's Any/DynAny machinery plus Lua's
// dynamic values: arguments, results, monitored property values, trader
// property values, and shipped code are all dynamically typed. Value is the
// Go analog. A Value holds one of: nil, bool, float64, string, []byte,
// *Table, or ObjRef (a remote object reference). Tables are associative
// arrays with both an array part and a hash part, mirroring the Lua tables
// the paper relies on for data description (§VI).
package wire

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind int

// Value kinds. KindNil is deliberately the zero value: the zero Value is nil.
const (
	KindNil Kind = iota
	KindBool
	KindNumber
	KindString
	KindBytes
	KindTable
	KindObjRef
)

// String returns the kind's name as used in diagnostics and by the script
// runtime's type() builtin.
func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindBool:
		return "boolean"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	case KindBytes:
		return "bytes"
	case KindTable:
		return "table"
	case KindObjRef:
		return "objref"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ObjRef names a remote object: a transport endpoint plus an object key
// scoped to that endpoint. It is the IOR analog; ObjRefs cross the wire so
// that, e.g., a client can hand a monitor a reference to its observer.
type ObjRef struct {
	// Endpoint is "network|address", e.g. "tcp|127.0.0.1:9021" or
	// "inproc|trader-1".
	Endpoint string
	// Key identifies the object within the endpoint's object adapter.
	Key string
}

// IsZero reports whether r is the zero reference.
func (r ObjRef) IsZero() bool { return r.Endpoint == "" && r.Key == "" }

// String renders the reference in the canonical "endpoint/key" form.
func (r ObjRef) String() string { return r.Endpoint + "/" + r.Key }

// ParseObjRef parses the canonical "network|address/key" form produced by
// ObjRef.String.
func ParseObjRef(s string) (ObjRef, error) {
	// Endpoints never contain '/', keys may: split at the first slash.
	i := strings.Index(s, "/")
	if i < 0 {
		return ObjRef{}, fmt.Errorf("wire: malformed object reference %q", s)
	}
	r := ObjRef{Endpoint: s[:i], Key: s[i+1:]}
	if r.Endpoint == "" || r.Key == "" || !strings.Contains(r.Endpoint, "|") {
		return ObjRef{}, fmt.Errorf("wire: malformed object reference %q", s)
	}
	return r, nil
}

// Value is a dynamically typed value. The zero Value is nil.
type Value struct {
	kind Kind
	b    bool
	n    float64
	s    string // string payload; also used for bytes via conversion
	t    *Table
	r    ObjRef
}

// Constructors.

// Nil returns the nil Value.
func Nil() Value { return Value{} }

// Bool returns a boolean Value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Number returns a numeric Value.
func Number(n float64) Value { return Value{kind: KindNumber, n: n} }

// Int returns a numeric Value holding an integer.
func Int(n int) Value { return Number(float64(n)) }

// String returns a string Value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Bytes returns a binary Value. The slice is copied.
func Bytes(b []byte) Value { return Value{kind: KindBytes, s: string(b)} }

// TableVal wraps a Table in a Value.
func TableVal(t *Table) Value {
	if t == nil {
		return Nil()
	}
	return Value{kind: KindTable, t: t}
}

// Ref wraps an object reference in a Value.
func Ref(r ObjRef) Value { return Value{kind: KindObjRef, r: r} }

// Accessors.

// Kind reports the value's dynamic type.
func (v Value) Kind() Kind { return v.kind }

// IsNil reports whether the value is nil.
func (v Value) IsNil() bool { return v.kind == KindNil }

// AsBool returns the boolean payload; ok is false if the value is not a
// boolean.
func (v Value) AsBool() (b, ok bool) { return v.b, v.kind == KindBool }

// AsNumber returns the numeric payload; ok is false if the value is not a
// number.
func (v Value) AsNumber() (float64, bool) { return v.n, v.kind == KindNumber }

// AsString returns the string payload; ok is false if the value is not a
// string.
func (v Value) AsString() (string, bool) { return v.s, v.kind == KindString }

// AsBytes returns the binary payload; ok is false if the value is not bytes.
func (v Value) AsBytes() ([]byte, bool) {
	if v.kind != KindBytes {
		return nil, false
	}
	return []byte(v.s), true
}

// AsTable returns the table payload; ok is false if the value is not a
// table.
func (v Value) AsTable() (*Table, bool) { return v.t, v.kind == KindTable }

// AsRef returns the object-reference payload; ok is false if the value is
// not an object reference.
func (v Value) AsRef() (ObjRef, bool) { return v.r, v.kind == KindObjRef }

// Truthy reports the value's truth under the scripting language's rules
// (only nil and false are false — Lua semantics, which the paper's shipped
// predicates rely on).
func (v Value) Truthy() bool {
	switch v.kind {
	case KindNil:
		return false
	case KindBool:
		return v.b
	default:
		return true
	}
}

// Num returns the numeric payload or 0 if the value is not a number.
// Convenience for metric plumbing where a missing number means zero.
func (v Value) Num() float64 {
	if v.kind != KindNumber {
		return 0
	}
	return v.n
}

// Str returns the string payload or "" if the value is not a string.
func (v Value) Str() string {
	if v.kind != KindString {
		return ""
	}
	return v.s
}

// Equal reports deep equality of two values. Tables compare by content
// (recursively); NaN equals NaN so that codec round-trip properties hold.
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case KindNil:
		return true
	case KindBool:
		return v.b == w.b
	case KindNumber:
		if math.IsNaN(v.n) && math.IsNaN(w.n) {
			return true
		}
		return math.Float64bits(v.n) == math.Float64bits(w.n)
	case KindString, KindBytes:
		return v.s == w.s
	case KindObjRef:
		return v.r == w.r
	case KindTable:
		return v.t.equal(w.t)
	default:
		return false
	}
}

// String renders the value for diagnostics. Tables render with sorted keys
// so output is deterministic.
func (v Value) String() string {
	var sb strings.Builder
	v.format(&sb, 0)
	return sb.String()
}

func (v Value) format(sb *strings.Builder, depth int) {
	switch v.kind {
	case KindNil:
		sb.WriteString("nil")
	case KindBool:
		sb.WriteString(strconv.FormatBool(v.b))
	case KindNumber:
		sb.WriteString(FormatNumber(v.n))
	case KindString:
		sb.WriteString(strconv.Quote(v.s))
	case KindBytes:
		fmt.Fprintf(sb, "bytes[%d]", len(v.s))
	case KindObjRef:
		sb.WriteString("<" + v.r.String() + ">")
	case KindTable:
		if depth > 8 {
			sb.WriteString("{...}")
			return
		}
		v.t.format(sb, depth)
	}
}

// FormatNumber renders a float64 the way the script runtime's tostring()
// does: integers without a decimal point, everything else in shortest form.
func FormatNumber(n float64) string {
	if n == math.Trunc(n) && math.Abs(n) < 1e15 {
		return strconv.FormatInt(int64(n), 10)
	}
	return strconv.FormatFloat(n, 'g', -1, 64)
}

// Table is an associative array with Lua-like behaviour: a contiguous
// integer-keyed array part (1-based) plus a hash part keyed by arbitrary
// non-nil scalar values. Tables are not safe for concurrent mutation; the
// layers above confine each table to one goroutine or copy at boundaries.
type Table struct {
	arr  []Value
	hash map[tableKey]Value
}

// tableKey is the comparable form of a Value usable as a table key.
type tableKey struct {
	kind Kind
	b    bool
	n    float64
	s    string
	r    ObjRef
}

func toKey(v Value) (tableKey, error) {
	switch v.kind {
	case KindBool:
		return tableKey{kind: KindBool, b: v.b}, nil
	case KindNumber:
		if math.IsNaN(v.n) {
			return tableKey{}, errors.New("wire: NaN table key")
		}
		return tableKey{kind: KindNumber, n: v.n}, nil
	case KindString:
		return tableKey{kind: KindString, s: v.s}, nil
	case KindObjRef:
		return tableKey{kind: KindObjRef, r: v.r}, nil
	default:
		return tableKey{}, fmt.Errorf("wire: %s is not usable as a table key", v.kind)
	}
}

func (k tableKey) value() Value {
	switch k.kind {
	case KindBool:
		return Bool(k.b)
	case KindNumber:
		return Number(k.n)
	case KindString:
		return String(k.s)
	case KindObjRef:
		return Ref(k.r)
	default:
		return Nil()
	}
}

// NewTable returns an empty table.
func NewTable() *Table { return &Table{} }

// NewList returns a table whose array part holds vs in order.
func NewList(vs ...Value) *Table {
	t := &Table{arr: make([]Value, len(vs))}
	copy(t.arr, vs)
	return t
}

// NewRecord returns a table populated from string-keyed fields.
func NewRecord(fields map[string]Value) *Table {
	t := NewTable()
	for k, v := range fields {
		t.SetString(k, v)
	}
	return t
}

// Len reports the length of the array part (the # operator).
func (t *Table) Len() int { return len(t.arr) }

// Index returns the value stored in the array part at i (1-based), or nil
// if out of range.
func (t *Table) Index(i int) Value {
	if i < 1 || i > len(t.arr) {
		// Fall back to the hash part: a[i] may have been stored sparsely.
		return t.Get(Int(i))
	}
	return t.arr[i-1]
}

// Append adds v to the end of the array part.
func (t *Table) Append(v Value) { t.arr = append(t.arr, v) }

// Get returns the value stored under key, or nil if absent or the key is
// not usable.
func (t *Table) Get(key Value) Value {
	if key.kind == KindNumber {
		n := key.n
		if n == math.Trunc(n) {
			i := int(n)
			if i >= 1 && i <= len(t.arr) {
				return t.arr[i-1]
			}
		}
	}
	k, err := toKey(key)
	if err != nil {
		return Nil()
	}
	return t.hash[k]
}

// GetString returns the value stored under the string key name.
func (t *Table) GetString(name string) Value { return t.Get(String(name)) }

// Set stores v under key. Setting nil deletes the key. Integer keys that
// extend the array part contiguously are stored there. Set returns an error
// only for unusable keys (nil, NaN, table, bytes).
func (t *Table) Set(key, v Value) error {
	if key.kind == KindNumber && key.n == math.Trunc(key.n) && !math.IsNaN(key.n) {
		i := int(key.n)
		if i >= 1 && i <= len(t.arr) {
			t.arr[i-1] = v
			if v.IsNil() && i == len(t.arr) {
				// Shrink trailing nils so Len stays meaningful.
				for len(t.arr) > 0 && t.arr[len(t.arr)-1].IsNil() {
					t.arr = t.arr[:len(t.arr)-1]
				}
			}
			return nil
		}
		if i == len(t.arr)+1 && !v.IsNil() {
			t.arr = append(t.arr, v)
			// Absorb any contiguous successors previously stored sparsely.
			for {
				k, _ := toKey(Int(len(t.arr) + 1))
				nv, ok := t.hash[k]
				if !ok {
					break
				}
				delete(t.hash, k)
				t.arr = append(t.arr, nv)
			}
			return nil
		}
	}
	k, err := toKey(key)
	if err != nil {
		return err
	}
	if v.IsNil() {
		delete(t.hash, k)
		return nil
	}
	if t.hash == nil {
		t.hash = make(map[tableKey]Value)
	}
	t.hash[k] = v
	return nil
}

// SetString stores v under the string key name.
func (t *Table) SetString(name string, v Value) {
	// Only unusable keys error, and a string key is always usable.
	_ = t.Set(String(name), v)
}

// Pairs calls fn for every key/value pair: array part first in index order,
// then hash part in deterministic (sorted) key order. Iteration stops if fn
// returns false.
func (t *Table) Pairs(fn func(k, v Value) bool) {
	for i, v := range t.arr {
		if v.IsNil() {
			continue
		}
		if !fn(Int(i+1), v) {
			return
		}
	}
	keys := make([]tableKey, 0, len(t.hash))
	for k := range t.hash {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	for _, k := range keys {
		if !fn(k.value(), t.hash[k]) {
			return
		}
	}
}

func keyLess(a, b tableKey) bool {
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	switch a.kind {
	case KindBool:
		return !a.b && b.b
	case KindNumber:
		return a.n < b.n
	case KindString:
		return a.s < b.s
	case KindObjRef:
		if a.r.Endpoint != b.r.Endpoint {
			return a.r.Endpoint < b.r.Endpoint
		}
		return a.r.Key < b.r.Key
	default:
		return false
	}
}

// Size reports the total number of stored pairs (array + hash).
func (t *Table) Size() int {
	n := len(t.hash)
	for _, v := range t.arr {
		if !v.IsNil() {
			n++
		}
	}
	return n
}

// Copy returns a deep copy of the table. Object references and scalars are
// copied by value; nested tables are copied recursively.
func (t *Table) Copy() *Table {
	out := &Table{arr: make([]Value, len(t.arr))}
	for i, v := range t.arr {
		out.arr[i] = copyValue(v)
	}
	if len(t.hash) > 0 {
		out.hash = make(map[tableKey]Value, len(t.hash))
		for k, v := range t.hash {
			out.hash[k] = copyValue(v)
		}
	}
	return out
}

func copyValue(v Value) Value {
	if v.kind == KindTable {
		return TableVal(v.t.Copy())
	}
	return v
}

func (t *Table) equal(u *Table) bool {
	if t == nil || u == nil {
		return t == u
	}
	if len(t.arr) != len(u.arr) || len(t.hash) != len(u.hash) {
		return false
	}
	for i := range t.arr {
		if !t.arr[i].Equal(u.arr[i]) {
			return false
		}
	}
	for k, v := range t.hash {
		if !v.Equal(u.hash[k]) {
			return false
		}
	}
	return true
}

func (t *Table) format(sb *strings.Builder, depth int) {
	sb.WriteByte('{')
	first := true
	t.Pairs(func(k, v Value) bool {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		if s, ok := k.AsString(); ok && isIdent(s) {
			sb.WriteString(s)
		} else {
			sb.WriteByte('[')
			k.format(sb, depth+1)
			sb.WriteByte(']')
		}
		sb.WriteByte('=')
		v.format(sb, depth+1)
		return true
	})
	sb.WriteByte('}')
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z':
		case i > 0 && r >= '0' && r <= '9':
		default:
			return false
		}
	}
	return true
}
