package wire

import (
	"math"
	"strings"
	"testing"
)

func TestZeroValueIsNil(t *testing.T) {
	var v Value
	if !v.IsNil() || v.Kind() != KindNil {
		t.Fatalf("zero Value: kind=%v IsNil=%v, want nil/true", v.Kind(), v.IsNil())
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		kind Kind
	}{
		{"nil", Nil(), KindNil},
		{"bool", Bool(true), KindBool},
		{"number", Number(3.5), KindNumber},
		{"int", Int(7), KindNumber},
		{"string", String("x"), KindString},
		{"bytes", Bytes([]byte{1, 2}), KindBytes},
		{"table", TableVal(NewTable()), KindTable},
		{"ref", Ref(ObjRef{Endpoint: "tcp|a:1", Key: "k"}), KindObjRef},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.v.Kind() != tt.kind {
				t.Fatalf("Kind() = %v, want %v", tt.v.Kind(), tt.kind)
			}
		})
	}

	if b, ok := Bool(true).AsBool(); !ok || !b {
		t.Error("AsBool(Bool(true)) failed")
	}
	if n, ok := Number(2.5).AsNumber(); !ok || n != 2.5 {
		t.Error("AsNumber(Number(2.5)) failed")
	}
	if s, ok := String("hi").AsString(); !ok || s != "hi" {
		t.Error("AsString(String(hi)) failed")
	}
	if bs, ok := Bytes([]byte{9}).AsBytes(); !ok || len(bs) != 1 || bs[0] != 9 {
		t.Error("AsBytes round trip failed")
	}
	if _, ok := String("x").AsNumber(); ok {
		t.Error("AsNumber on string reported ok")
	}
	if _, ok := Number(1).AsString(); ok {
		t.Error("AsString on number reported ok")
	}
}

func TestTableValNilTableIsNil(t *testing.T) {
	if !TableVal(nil).IsNil() {
		t.Fatal("TableVal(nil) should be the nil value")
	}
}

func TestTruthy(t *testing.T) {
	tests := []struct {
		v    Value
		want bool
	}{
		{Nil(), false},
		{Bool(false), false},
		{Bool(true), true},
		{Number(0), true}, // Lua semantics: 0 is true
		{String(""), true},
		{TableVal(NewTable()), true},
	}
	for _, tt := range tests {
		if got := tt.v.Truthy(); got != tt.want {
			t.Errorf("Truthy(%v) = %v, want %v", tt.v, got, tt.want)
		}
	}
}

func TestNumStrHelpers(t *testing.T) {
	if Number(4).Num() != 4 || String("x").Num() != 0 {
		t.Error("Num() helper wrong")
	}
	if String("x").Str() != "x" || Number(4).Str() != "" {
		t.Error("Str() helper wrong")
	}
}

func TestEqual(t *testing.T) {
	t1 := NewList(Int(1), String("a"))
	t1.SetString("k", Bool(true))
	t2 := NewList(Int(1), String("a"))
	t2.SetString("k", Bool(true))
	t3 := NewList(Int(1), String("a"))

	tests := []struct {
		name string
		a, b Value
		want bool
	}{
		{"nil=nil", Nil(), Nil(), true},
		{"nil!=false", Nil(), Bool(false), false},
		{"num=num", Number(1.5), Number(1.5), true},
		{"nan=nan", Number(math.NaN()), Number(math.NaN()), true},
		{"str=str", String("a"), String("a"), true},
		{"str!=bytes", String("a"), Bytes([]byte("a")), false},
		{"table deep equal", TableVal(t1), TableVal(t2), true},
		{"table not equal", TableVal(t1), TableVal(t3), false},
		{"ref=ref", Ref(ObjRef{"tcp|x", "k"}), Ref(ObjRef{"tcp|x", "k"}), true},
		{"ref!=ref", Ref(ObjRef{"tcp|x", "k"}), Ref(ObjRef{"tcp|x", "j"}), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Equal(tt.b); got != tt.want {
				t.Fatalf("Equal = %v, want %v", got, tt.want)
			}
			if got := tt.b.Equal(tt.a); got != tt.want {
				t.Fatalf("Equal (sym) = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestObjRefParseRoundTrip(t *testing.T) {
	refs := []ObjRef{
		{Endpoint: "tcp|127.0.0.1:9000", Key: "trader"},
		{Endpoint: "inproc|host-1", Key: "monitor/load"},
	}
	for _, r := range refs {
		got, err := ParseObjRef(r.String())
		if err != nil {
			t.Fatalf("ParseObjRef(%q): %v", r.String(), err)
		}
		if got != r {
			t.Fatalf("round trip = %+v, want %+v", got, r)
		}
	}
}

func TestObjRefParseErrors(t *testing.T) {
	for _, s := range []string{"", "nokey", "/onlykey", "noendpoint/", "missingbar/key"} {
		if _, err := ParseObjRef(s); err == nil {
			t.Errorf("ParseObjRef(%q) succeeded, want error", s)
		}
	}
}

func TestTableArrayPart(t *testing.T) {
	tb := NewTable()
	tb.Append(String("a"))
	tb.Append(String("b"))
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
	if got := tb.Index(1).Str(); got != "a" {
		t.Fatalf("Index(1) = %q, want a", got)
	}
	if !tb.Index(0).IsNil() || !tb.Index(3).IsNil() {
		t.Fatal("out-of-range Index should be nil")
	}
}

func TestTableSetContiguousIntegerExtendsArray(t *testing.T) {
	tb := NewTable()
	if err := tb.Set(Int(1), String("x")); err != nil {
		t.Fatal(err)
	}
	if err := tb.Set(Int(2), String("y")); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
}

func TestTableSparseThenFill(t *testing.T) {
	tb := NewTable()
	// Store index 3 sparsely, then fill 1 and 2; array should absorb 3.
	if err := tb.Set(Int(3), String("c")); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 0 {
		t.Fatalf("sparse store grew array: Len = %d", tb.Len())
	}
	if err := tb.Set(Int(1), String("a")); err != nil {
		t.Fatal(err)
	}
	if err := tb.Set(Int(2), String("b")); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 3 {
		t.Fatalf("Len = %d, want 3 after absorbing sparse successor", tb.Len())
	}
	if got := tb.Index(3).Str(); got != "c" {
		t.Fatalf("Index(3) = %q, want c", got)
	}
}

func TestTableSetNilDeletes(t *testing.T) {
	tb := NewTable()
	tb.SetString("k", Int(1))
	tb.SetString("k", Nil())
	if !tb.GetString("k").IsNil() {
		t.Fatal("SetString(k, nil) did not delete")
	}
	if tb.Size() != 0 {
		t.Fatalf("Size = %d, want 0", tb.Size())
	}
	// Deleting the tail of the array part shrinks it.
	tb.Append(Int(1))
	tb.Append(Int(2))
	if err := tb.Set(Int(2), Nil()); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after trailing delete", tb.Len())
	}
}

func TestTableBadKeys(t *testing.T) {
	tb := NewTable()
	if err := tb.Set(Nil(), Int(1)); err == nil {
		t.Error("Set(nil key) succeeded")
	}
	if err := tb.Set(Number(math.NaN()), Int(1)); err == nil {
		t.Error("Set(NaN key) succeeded")
	}
	if err := tb.Set(TableVal(NewTable()), Int(1)); err == nil {
		t.Error("Set(table key) succeeded")
	}
	// Get with a bad key returns nil rather than erroring.
	if !tb.Get(Nil()).IsNil() {
		t.Error("Get(nil key) should be nil")
	}
}

func TestTableMixedKeyKinds(t *testing.T) {
	tb := NewTable()
	if err := tb.Set(Bool(true), String("bt")); err != nil {
		t.Fatal(err)
	}
	if err := tb.Set(Number(2.5), String("n")); err != nil {
		t.Fatal(err)
	}
	r := ObjRef{Endpoint: "tcp|x:1", Key: "o"}
	if err := tb.Set(Ref(r), String("ref")); err != nil {
		t.Fatal(err)
	}
	if got := tb.Get(Bool(true)).Str(); got != "bt" {
		t.Fatalf("bool key = %q", got)
	}
	if got := tb.Get(Number(2.5)).Str(); got != "n" {
		t.Fatalf("float key = %q", got)
	}
	if got := tb.Get(Ref(r)).Str(); got != "ref" {
		t.Fatalf("ref key = %q", got)
	}
}

func TestTablePairsOrderDeterministic(t *testing.T) {
	tb := NewTable()
	tb.Append(String("first"))
	tb.SetString("zeta", Int(1))
	tb.SetString("alpha", Int(2))
	if err := tb.Set(Number(10), Int(3)); err != nil {
		t.Fatal(err)
	}
	var keys []string
	tb.Pairs(func(k, v Value) bool {
		keys = append(keys, k.String())
		return true
	})
	want := []string{"1", "10", `"alpha"`, `"zeta"`}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
}

func TestTablePairsEarlyStop(t *testing.T) {
	tb := NewList(Int(1), Int(2), Int(3))
	n := 0
	tb.Pairs(func(k, v Value) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("Pairs visited %d entries after early stop, want 2", n)
	}
}

func TestTableCopyIsDeep(t *testing.T) {
	inner := NewTable()
	inner.SetString("x", Int(1))
	tb := NewTable()
	tb.SetString("inner", TableVal(inner))
	cp := tb.Copy()
	inner.SetString("x", Int(99))
	cpInner, _ := cp.GetString("inner").AsTable()
	if got := cpInner.GetString("x").Num(); got != 1 {
		t.Fatalf("deep copy shares inner table: x = %v", got)
	}
}

func TestNewRecord(t *testing.T) {
	tb := NewRecord(map[string]Value{"a": Int(1), "b": String("two")})
	if tb.GetString("a").Num() != 1 || tb.GetString("b").Str() != "two" {
		t.Fatal("NewRecord fields wrong")
	}
}

func TestValueStringRendering(t *testing.T) {
	tb := NewTable()
	tb.Append(Int(1))
	tb.SetString("name", String("srv"))
	got := TableVal(tb).String()
	if !strings.Contains(got, "name=") || !strings.Contains(got, `"srv"`) {
		t.Fatalf("String() = %q, missing record field", got)
	}
	if Number(42).String() != "42" {
		t.Fatalf("Number(42).String() = %q", Number(42).String())
	}
	if Number(2.5).String() != "2.5" {
		t.Fatalf("Number(2.5).String() = %q", Number(2.5).String())
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindNil: "nil", KindBool: "boolean", KindNumber: "number",
		KindString: "string", KindBytes: "bytes", KindTable: "table",
		KindObjRef: "objref",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind rendered as %q", got)
	}
}
