package wire

import (
	"fmt"
)

// MsgType distinguishes ORB protocol messages within a frame.
type MsgType uint8

// Message types. Oneway requests elicit no reply (the paper's
// EventObserver.notifyEvent is declared oneway, Fig. 2). Subscribe opens
// a server-push stream on the connection: the server acks it with a
// normal Reply and thereafter delivers Event frames tagged with the
// subscription id until the client unsubscribes or the connection dies.
const (
	MsgRequest MsgType = iota + 1
	MsgReply
	MsgOneway
	MsgErrorReply
	MsgSubscribe
	MsgUnsubscribe
	MsgEvent
)

// String names the message type.
func (m MsgType) String() string {
	switch m {
	case MsgRequest:
		return "request"
	case MsgReply:
		return "reply"
	case MsgOneway:
		return "oneway"
	case MsgErrorReply:
		return "error"
	case MsgSubscribe:
		return "subscribe"
	case MsgUnsubscribe:
		return "unsubscribe"
	case MsgEvent:
		return "event"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(m))
	}
}

// StatusOverloaded is the error code a server puts in a reply it sheds at
// admission because its dispatch pool and queue are saturated. It lives in
// the wire package (unlike the orb.Code* constants) because both sides of
// the protocol and the fuzz corpus treat it as part of the frame format:
// an overload reply must round-trip like any other error reply.
const StatusOverloaded = "OVERLOADED"

// Request is an invocation of an operation on a remote object. Args are
// dynamically typed, which is what makes the client side stub-free (the
// paper's DII analog).
type Request struct {
	ID        uint64  // correlates replies; 0 for oneway
	ObjectKey string  // target object within the server's adapter
	Operation string  // operation name
	Args      []Value // positional arguments

	// Deadline is the invocation deadline in Unix nanoseconds (0 = none).
	// It rides the wire so servers can abort dispatch of requests whose
	// caller has already given up and bound the write of the reply.
	Deadline int64
}

// Reply carries the results of a request, or an error.
type Reply struct {
	ID      uint64
	Results []Value
	Err     string // non-empty on MsgErrorReply
	ErrCode string // machine-matchable error code (see orb package)
}

// EncodeRequest encodes a request (or oneway, if oneway is true) into a
// fresh frame payload. Hot paths use AppendRequest with a pooled buffer.
func EncodeRequest(req *Request, oneway bool) ([]byte, error) {
	return AppendRequest(nil, req, oneway)
}

// AppendRequest appends the encoding of a request (or oneway, if oneway is
// true) to dst and returns the extended slice.
func AppendRequest(dst []byte, req *Request, oneway bool) ([]byte, error) {
	mt := MsgRequest
	if oneway {
		mt = MsgOneway
	}
	buf := append(dst, byte(mt))
	buf = appendUint64(buf, req.ID)
	buf = appendUint64(buf, uint64(req.Deadline))
	buf = appendString(buf, req.ObjectKey)
	buf = appendString(buf, req.Operation)
	buf = appendString(buf, "") // reserved (e.g. auth context)
	buf = appendUint64(buf, uint64(len(req.Args)))
	var err error
	for _, a := range req.Args {
		if buf, err = AppendValue(buf, a); err != nil {
			return nil, fmt.Errorf("wire: encode request arg: %w", err)
		}
	}
	return buf, nil
}

// EncodeReply encodes a reply into a fresh frame payload. Hot paths use
// AppendReply with a pooled buffer.
func EncodeReply(rep *Reply) ([]byte, error) {
	return AppendReply(nil, rep)
}

// AppendReply appends the encoding of a reply to dst and returns the
// extended slice.
func AppendReply(dst []byte, rep *Reply) ([]byte, error) {
	mt := MsgReply
	if rep.Err != "" {
		mt = MsgErrorReply
	}
	buf := append(dst, byte(mt))
	buf = appendUint64(buf, rep.ID)
	if rep.Err != "" {
		buf = appendString(buf, rep.ErrCode)
		buf = appendString(buf, rep.Err)
		return buf, nil
	}
	buf = appendUint64(buf, uint64(len(rep.Results)))
	var err error
	for _, r := range rep.Results {
		if buf, err = AppendValue(buf, r); err != nil {
			return nil, fmt.Errorf("wire: encode reply result: %w", err)
		}
	}
	return buf, nil
}

// Subscribe opens a push subscription on an object: the server routes
// Topic and Args (e.g. an event id and a shipped predicate) to the
// servant, which streams events back as Event frames carrying SubID.
// The server acknowledges with a Reply (or ErrorReply) correlated by ID,
// exactly like a request.
type Subscribe struct {
	ID        uint64  // correlates the ack reply
	SubID     uint64  // client-chosen stream id, unique per connection
	ObjectKey string  // target object within the server's adapter
	Topic     string  // what to subscribe to (e.g. an event id)
	Args      []Value // subscription arguments (e.g. predicate source)
}

// Event is one pushed notification on an open subscription.
type Event struct {
	SubID  uint64
	Values []Value
}

// AppendSubscribe appends the encoding of a subscribe message to dst.
func AppendSubscribe(dst []byte, sub *Subscribe) ([]byte, error) {
	buf := append(dst, byte(MsgSubscribe))
	buf = appendUint64(buf, sub.ID)
	buf = appendUint64(buf, sub.SubID)
	buf = appendString(buf, sub.ObjectKey)
	buf = appendString(buf, sub.Topic)
	buf = appendUint64(buf, uint64(len(sub.Args)))
	var err error
	for _, a := range sub.Args {
		if buf, err = AppendValue(buf, a); err != nil {
			return nil, fmt.Errorf("wire: encode subscribe arg: %w", err)
		}
	}
	return buf, nil
}

// AppendUnsubscribe appends the encoding of an unsubscribe message to dst.
func AppendUnsubscribe(dst []byte, subID uint64) []byte {
	buf := append(dst, byte(MsgUnsubscribe))
	return appendUint64(buf, subID)
}

// AppendEvent appends the encoding of a pushed event to dst.
func AppendEvent(dst []byte, ev *Event) ([]byte, error) {
	buf := append(dst, byte(MsgEvent))
	buf = appendUint64(buf, ev.SubID)
	buf = appendUint64(buf, uint64(len(ev.Values)))
	var err error
	for _, v := range ev.Values {
		if buf, err = AppendValue(buf, v); err != nil {
			return nil, fmt.Errorf("wire: encode event value: %w", err)
		}
	}
	return buf, nil
}

// Message is a decoded protocol message: exactly one of Req, Rep, Sub,
// Event, or (for unsubscribe) UnsubID is set.
type Message struct {
	Type    MsgType
	Req     *Request
	Rep     *Reply
	Sub     *Subscribe
	Event   *Event
	UnsubID uint64 // set when Type == MsgUnsubscribe
}

// DecodeMessage decodes a frame payload into a protocol message.
func DecodeMessage(payload []byte) (*Message, error) {
	if len(payload) == 0 {
		return nil, ErrTruncated
	}
	mt := MsgType(payload[0])
	d := NewDecoder(payload[1:])
	switch mt {
	case MsgRequest, MsgOneway:
		req := &Request{}
		var err error
		if req.ID, err = d.u64(); err != nil {
			return nil, err
		}
		dl, err := d.u64()
		if err != nil {
			return nil, err
		}
		req.Deadline = int64(dl)
		if req.ObjectKey, err = d.str(); err != nil {
			return nil, err
		}
		if req.Operation, err = d.str(); err != nil {
			return nil, err
		}
		if _, err = d.str(); err != nil { // reserved
			return nil, err
		}
		n, err := d.u64()
		if err != nil {
			return nil, err
		}
		if n > uint64(d.Remaining()) {
			return nil, ErrTruncated
		}
		req.Args = make([]Value, 0, n)
		for i := uint64(0); i < n; i++ {
			v, err := d.Value()
			if err != nil {
				return nil, fmt.Errorf("wire: decode arg %d: %w", i, err)
			}
			req.Args = append(req.Args, v)
		}
		if d.Remaining() != 0 {
			return nil, fmt.Errorf("wire: %d trailing bytes in request", d.Remaining())
		}
		return &Message{Type: mt, Req: req}, nil
	case MsgReply, MsgErrorReply:
		rep := &Reply{}
		var err error
		if rep.ID, err = d.u64(); err != nil {
			return nil, err
		}
		if mt == MsgErrorReply {
			if rep.ErrCode, err = d.str(); err != nil {
				return nil, err
			}
			if rep.Err, err = d.str(); err != nil {
				return nil, err
			}
			if rep.Err == "" {
				rep.Err = "unknown remote error"
			}
			return &Message{Type: mt, Rep: rep}, nil
		}
		n, err := d.u64()
		if err != nil {
			return nil, err
		}
		if n > uint64(d.Remaining()) {
			return nil, ErrTruncated
		}
		rep.Results = make([]Value, 0, n)
		for i := uint64(0); i < n; i++ {
			v, err := d.Value()
			if err != nil {
				return nil, fmt.Errorf("wire: decode result %d: %w", i, err)
			}
			rep.Results = append(rep.Results, v)
		}
		if d.Remaining() != 0 {
			return nil, fmt.Errorf("wire: %d trailing bytes in reply", d.Remaining())
		}
		return &Message{Type: mt, Rep: rep}, nil
	case MsgSubscribe:
		sub := &Subscribe{}
		var err error
		if sub.ID, err = d.u64(); err != nil {
			return nil, err
		}
		if sub.SubID, err = d.u64(); err != nil {
			return nil, err
		}
		if sub.ObjectKey, err = d.str(); err != nil {
			return nil, err
		}
		if sub.Topic, err = d.str(); err != nil {
			return nil, err
		}
		n, err := d.u64()
		if err != nil {
			return nil, err
		}
		if n > uint64(d.Remaining()) {
			return nil, ErrTruncated
		}
		sub.Args = make([]Value, 0, n)
		for i := uint64(0); i < n; i++ {
			v, err := d.Value()
			if err != nil {
				return nil, fmt.Errorf("wire: decode subscribe arg %d: %w", i, err)
			}
			sub.Args = append(sub.Args, v)
		}
		if d.Remaining() != 0 {
			return nil, fmt.Errorf("wire: %d trailing bytes in subscribe", d.Remaining())
		}
		return &Message{Type: mt, Sub: sub}, nil
	case MsgUnsubscribe:
		subID, err := d.u64()
		if err != nil {
			return nil, err
		}
		if d.Remaining() != 0 {
			return nil, fmt.Errorf("wire: %d trailing bytes in unsubscribe", d.Remaining())
		}
		return &Message{Type: mt, UnsubID: subID}, nil
	case MsgEvent:
		ev := &Event{}
		var err error
		if ev.SubID, err = d.u64(); err != nil {
			return nil, err
		}
		n, err := d.u64()
		if err != nil {
			return nil, err
		}
		if n > uint64(d.Remaining()) {
			return nil, ErrTruncated
		}
		ev.Values = make([]Value, 0, n)
		for i := uint64(0); i < n; i++ {
			v, err := d.Value()
			if err != nil {
				return nil, fmt.Errorf("wire: decode event value %d: %w", i, err)
			}
			ev.Values = append(ev.Values, v)
		}
		if d.Remaining() != 0 {
			return nil, fmt.Errorf("wire: %d trailing bytes in event", d.Remaining())
		}
		return &Message{Type: mt, Event: ev}, nil
	default:
		return nil, fmt.Errorf("wire: unknown message type 0x%02x", payload[0])
	}
}

func appendUint64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func (d *Decoder) u64() (uint64, error) {
	if d.Remaining() < 8 {
		return 0, ErrTruncated
	}
	b := d.buf[d.pos : d.pos+8]
	d.pos += 8
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7]), nil
}
