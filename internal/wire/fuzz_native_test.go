package wire

import (
	"bytes"
	"errors"
	"testing"
)

// Native fuzz target and deterministic hostile-input tests for the frame
// decoder. The property tests in fuzz_test.go throw random bytes at the
// decoder; this file seeds the coverage-guided fuzzer with one valid
// encoding of every message type (so mutations start from deep decode
// paths) and pins the specific failure modes a hostile peer can trigger:
// truncation at every byte boundary, nesting past the depth limit, and
// oversized frame claims.

// seedMessages returns a valid encoding of each of the seven frame types,
// including an error reply carrying the overload-shed status code.
func seedMessages(t testingT) [][]byte {
	args := []Value{
		String("alpha"), Int(42), Bool(true),
		Ref(ObjRef{Endpoint: "tcp|h:1", Key: "svc"}),
		TableVal(NewList(Number(3.25), Bytes([]byte{1, 2}))),
	}
	var seeds [][]byte
	add := func(b []byte, err error) {
		if err != nil {
			t.Fatalf("seed encode: %v", err)
		}
		seeds = append(seeds, b)
	}
	add(EncodeRequest(&Request{ID: 7, ObjectKey: "svc", Operation: "work", Args: args, Deadline: 1 << 40}, false))
	add(EncodeRequest(&Request{ID: 8, ObjectKey: "svc", Operation: "fire", Args: args[:1]}, true))
	add(EncodeReply(&Reply{ID: 7, Results: args}))
	add(EncodeReply(&Reply{ID: 7, Err: "server overloaded", ErrCode: StatusOverloaded}))
	add(AppendSubscribe(nil, &Subscribe{ID: 9, SubID: 3, ObjectKey: "svc", Topic: "load", Args: args[:2]}))
	seeds = append(seeds, AppendUnsubscribe(nil, 3))
	add(AppendEvent(nil, &Event{SubID: 3, Values: args[:3]}))
	return seeds
}

// testingT is the subset of *testing.T and *testing.F the seed builder
// needs, so the same seeds feed both the fuzzer and deterministic tests.
type testingT interface {
	Fatalf(format string, args ...any)
}

// FuzzDecodeMessage is the coverage-guided companion to the
// testing/quick properties: DecodeMessage must never panic, and any
// payload it accepts must decode identically a second time.
func FuzzDecodeMessage(f *testing.F) {
	for _, seed := range seedMessages(f) {
		f.Add(seed)
	}
	// Hostile shapes: truncated request prefix, deep nesting, junk tag.
	req := seedMessages(f)[0]
	f.Add(req[:len(req)/2])
	f.Add(deepTablePayload(byte(MsgEvent), maxDepth+8))
	f.Add([]byte{0xff, 0x00, 0x7f})
	f.Fuzz(func(t *testing.T, b []byte) {
		msg, err := DecodeMessage(b)
		if err != nil {
			return
		}
		again, err := DecodeMessage(b)
		if err != nil {
			t.Fatalf("second decode of accepted payload failed: %v", err)
		}
		if msg.Type != again.Type {
			t.Fatalf("decode not deterministic: %v then %v", msg.Type, again.Type)
		}
	})
}

// TestDecodeMessageEveryPrefix truncates valid encodings of all seven
// message types at every byte boundary: each strict prefix must be
// rejected with an error — never a panic, never a silent partial decode.
func TestDecodeMessageEveryPrefix(t *testing.T) {
	for i, seed := range seedMessages(t) {
		if msg, err := DecodeMessage(seed); err != nil || msg == nil {
			t.Fatalf("seed %d: full decode failed: %v", i, err)
		}
		for n := 0; n < len(seed); n++ {
			if _, err := DecodeMessage(seed[:n]); err == nil {
				t.Fatalf("seed %d: %d-byte strict prefix of a %d-byte message decoded without error", i, n, len(seed))
			}
		}
	}
}

// deepTablePayload hand-crafts a message whose single argument nests
// depth tables: each level is tagTable + arrlen(1), the innermost element
// is nil, and each level closes with hashlen(0). This bypasses the
// encoder's own depth check to prove the decoder enforces its own.
func deepTablePayload(msgType byte, depth int) []byte {
	// Event header: type, subID (8-byte BE), value count = 1 (8-byte BE).
	buf := []byte{msgType}
	buf = appendUint64(buf, 1)
	buf = appendUint64(buf, 1)
	for i := 0; i < depth; i++ {
		buf = append(buf, tagTable, 1)
	}
	buf = append(buf, tagNil)
	for i := 0; i < depth; i++ {
		buf = append(buf, 0)
	}
	return buf
}

// TestDecodeDepthLimit covers the decode side of the nesting bound (the
// encode side lives in codec_test.go): a hand-built payload nested past
// maxDepth is rejected with ErrTooDeep, while the same construction at
// the limit decodes fine.
func TestDecodeDepthLimit(t *testing.T) {
	hostile := deepTablePayload(byte(MsgEvent), maxDepth+8)
	if _, err := DecodeMessage(hostile); !errors.Is(err, ErrTooDeep) {
		t.Fatalf("over-limit nesting: err = %v, want ErrTooDeep", err)
	}
	okDepth := deepTablePayload(byte(MsgEvent), maxDepth-2)
	msg, err := DecodeMessage(okDepth)
	if err != nil {
		t.Fatalf("at-limit nesting rejected: %v", err)
	}
	if msg.Type != MsgEvent || len(msg.Event.Values) != 1 {
		t.Fatalf("at-limit decode = %+v", msg)
	}
}

// TestOverloadedReplyRoundTrip pins the overload-shed wire contract: an
// error reply carrying StatusOverloaded survives the pooled append-form
// encode and comes back as an error reply with the code intact — this is
// the frame the ORB client maps to ErrOverloaded.
func TestOverloadedReplyRoundTrip(t *testing.T) {
	dirty := []byte{0xaa, 0xbb}
	buf, err := AppendReply(dirty, &Reply{ID: 99, Err: "request shed: dispatch queue full", ErrCode: StatusOverloaded})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	msg, err := DecodeMessage(buf[len(dirty):])
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if msg.Type != MsgErrorReply {
		t.Fatalf("type = %v, want MsgErrorReply", msg.Type)
	}
	if msg.Rep.ID != 99 || msg.Rep.ErrCode != StatusOverloaded || msg.Rep.Err == "" {
		t.Fatalf("reply = %+v, want ID 99 with code %q", msg.Rep, StatusOverloaded)
	}
}

// TestFrameReaderOversizedClaim covers the buffered reader's size check
// (codec_test.go covers the unbuffered ReadFrame): a header claiming more
// than MaxFrameSize must be refused before any body is read or allocated.
func TestFrameReaderOversizedClaim(t *testing.T) {
	var stream bytes.Buffer
	stream.Write([]byte{0xff, 0xff, 0xff, 0xff})
	fr := NewFrameReader(&stream)
	if _, err := fr.Next(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}
