package wire

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mustEncode(t *testing.T, v Value) []byte {
	t.Helper()
	b, err := EncodeValue(v)
	if err != nil {
		t.Fatalf("EncodeValue(%v): %v", v, err)
	}
	return b
}

func TestCodecScalarsRoundTrip(t *testing.T) {
	vals := []Value{
		Nil(),
		Bool(false),
		Bool(true),
		Number(0),
		Number(-1.5),
		Number(math.Inf(1)),
		Number(math.NaN()),
		String(""),
		String("hello, 世界"),
		Bytes(nil),
		Bytes([]byte{0, 1, 255}),
		Ref(ObjRef{Endpoint: "tcp|10.0.0.1:9090", Key: "monitor/LoadAvg"}),
	}
	for _, v := range vals {
		got, err := DecodeValue(mustEncode(t, v))
		if err != nil {
			t.Fatalf("decode(%v): %v", v, err)
		}
		if !got.Equal(v) {
			t.Fatalf("round trip: got %v, want %v", got, v)
		}
	}
}

func TestCodecTableRoundTrip(t *testing.T) {
	inner := NewList(Number(1), Number(5), Number(15))
	tb := NewTable()
	tb.Append(String("a"))
	tb.Append(TableVal(inner))
	tb.SetString("name", String("LoadAvg"))
	tb.SetString("threshold", Number(50))
	if err := tb.Set(Bool(true), String("flag")); err != nil {
		t.Fatal(err)
	}
	if err := tb.Set(Number(7.5), String("frac")); err != nil {
		t.Fatal(err)
	}
	v := TableVal(tb)
	got, err := DecodeValue(mustEncode(t, v))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v) {
		t.Fatalf("table round trip:\n got %v\nwant %v", got, v)
	}
}

func TestCodecDeterministicEncoding(t *testing.T) {
	tb := NewTable()
	tb.SetString("b", Int(2))
	tb.SetString("a", Int(1))
	tb.SetString("c", Int(3))
	b1 := mustEncode(t, TableVal(tb))
	b2 := mustEncode(t, TableVal(tb))
	if !bytes.Equal(b1, b2) {
		t.Fatal("encoding of the same table differs between calls")
	}
}

func TestCodecDepthLimit(t *testing.T) {
	v := TableVal(NewTable())
	for i := 0; i < maxDepth+2; i++ {
		outer := NewTable()
		outer.Append(v)
		v = TableVal(outer)
	}
	if _, err := EncodeValue(v); !errors.Is(err, ErrTooDeep) {
		t.Fatalf("EncodeValue(deep) err = %v, want ErrTooDeep", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"unknown tag", []byte{0x7f}},
		{"truncated number", []byte{tagNumber, 1, 2}},
		{"truncated string len", []byte{tagString}},
		{"string shorter than length", []byte{tagString, 10, 'a'}},
		{"table truncated", []byte{tagTable, 2, tagNil}},
		{"huge array claim", []byte{tagTable, 0xff, 0xff, 0xff, 0xff, 0x0f}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := DecodeValue(tt.buf); err == nil {
				t.Fatal("DecodeValue succeeded on malformed input")
			}
		})
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	b := mustEncode(t, Int(1))
	b = append(b, 0x00)
	if _, err := DecodeValue(b); err == nil {
		t.Fatal("DecodeValue accepted trailing bytes")
	}
}

// randomValue builds an arbitrary Value for property testing.
func randomValue(r *rand.Rand, depth int) Value {
	max := 7
	if depth > 3 {
		max = 5 // no tables below depth 3: keep sizes bounded
	}
	switch r.Intn(max) {
	case 0:
		return Nil()
	case 1:
		return Bool(r.Intn(2) == 0)
	case 2:
		// Mix of integers and irrational-ish floats.
		if r.Intn(2) == 0 {
			return Int(r.Intn(2000) - 1000)
		}
		return Number(r.NormFloat64() * 1e6)
	case 3:
		n := r.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return String(string(b))
	case 4:
		n := r.Intn(12)
		b := make([]byte, n)
		r.Read(b)
		return Bytes(b)
	case 5:
		return Ref(ObjRef{Endpoint: "tcp|h:1", Key: string(rune('a' + r.Intn(26)))})
	default:
		tb := NewTable()
		for i, n := 0, r.Intn(4); i < n; i++ {
			tb.Append(randomValue(r, depth+1))
		}
		for i, n := 0, r.Intn(4); i < n; i++ {
			key := String(string(rune('a'+r.Intn(26))) + string(rune('a'+r.Intn(26))))
			_ = tb.Set(key, randomValue(r, depth+1))
		}
		return TableVal(tb)
	}
}

func TestPropertyCodecRoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(randomValue(r, 0))
		},
	}
	prop := func(v Value) bool {
		b, err := EncodeValue(v)
		if err != nil {
			return false
		}
		got, err := DecodeValue(b)
		if err != nil {
			return false
		}
		return got.Equal(v)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEncodingDeterministic(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(randomValue(r, 0))
		},
	}
	prop := func(v Value) bool {
		b1, err1 := EncodeValue(v)
		b2, err2 := EncodeValue(v)
		return err1 == nil && err2 == nil && bytes.Equal(b1, b2)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("payload-bytes")
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("frame = %q, want %q", got, payload)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("frame len = %d, want 0", len(got))
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var hdr bytes.Buffer
	// Claim a frame larger than MaxFrameSize.
	hdr.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&hdr); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	big := make([]byte, MaxFrameSize+1)
	if err := WriteFrame(&bytes.Buffer{}, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("WriteFrame err = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 10, 'a', 'b'}) // claims 10 bytes, has 2
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	req := &Request{
		ID:        42,
		ObjectKey: "monitor/LoadAvg",
		Operation: "getAspectValue",
		Args:      []Value{String("Increasing"), Int(5)},
		Deadline:  1234567890123456789,
	}
	payload, err := EncodeRequest(req, false)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := DecodeMessage(payload)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgRequest {
		t.Fatalf("type = %v, want request", msg.Type)
	}
	got := msg.Req
	if got.ID != req.ID || got.ObjectKey != req.ObjectKey || got.Operation != req.Operation {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Deadline != req.Deadline {
		t.Fatalf("deadline = %d, want %d", got.Deadline, req.Deadline)
	}
	if len(got.Args) != 2 || !got.Args[0].Equal(req.Args[0]) || !got.Args[1].Equal(req.Args[1]) {
		t.Fatalf("args mismatch: %v", got.Args)
	}
}

func TestOnewayRoundTrip(t *testing.T) {
	req := &Request{ObjectKey: "observer-1", Operation: "notifyEvent", Args: []Value{String("LoadIncrease")}}
	payload, err := EncodeRequest(req, true)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := DecodeMessage(payload)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgOneway {
		t.Fatalf("type = %v, want oneway", msg.Type)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	rep := &Reply{ID: 7, Results: []Value{Bool(true), NilOrTable()}}
	payload, err := EncodeReply(rep)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := DecodeMessage(payload)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgReply || msg.Rep.ID != 7 || len(msg.Rep.Results) != 2 {
		t.Fatalf("reply mismatch: %+v", msg.Rep)
	}
}

// NilOrTable keeps the reply test honest with a structured result.
func NilOrTable() Value {
	tb := NewTable()
	tb.SetString("ok", Bool(true))
	return TableVal(tb)
}

func TestErrorReplyRoundTrip(t *testing.T) {
	rep := &Reply{ID: 9, Err: "no such operation", ErrCode: "BAD_OPERATION"}
	payload, err := EncodeReply(rep)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := DecodeMessage(payload)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgErrorReply {
		t.Fatalf("type = %v, want error reply", msg.Type)
	}
	if msg.Rep.Err != "no such operation" || msg.Rep.ErrCode != "BAD_OPERATION" {
		t.Fatalf("error fields = %q/%q", msg.Rep.ErrCode, msg.Rep.Err)
	}
}

func TestDecodeMessageErrors(t *testing.T) {
	tests := [][]byte{
		nil,
		{0x00},
		{byte(MsgRequest)},           // truncated header
		{byte(MsgReply), 0, 0, 0, 0}, // truncated id
		{byte(MsgRequest), 0, 0, 0, 0, 0, 0, 0, 0, 5, 'a'}, // bad objkey len
	}
	for i, b := range tests {
		if _, err := DecodeMessage(b); err == nil {
			t.Errorf("case %d: DecodeMessage succeeded on malformed input", i)
		}
	}
}

func TestMsgTypeString(t *testing.T) {
	if MsgRequest.String() != "request" || MsgOneway.String() != "oneway" ||
		MsgReply.String() != "reply" || MsgErrorReply.String() != "error" {
		t.Fatal("MsgType names wrong")
	}
	if MsgType(0).String() == "" {
		t.Fatal("unknown MsgType should render")
	}
}

func BenchmarkEncodeSmallRequest(b *testing.B) {
	req := &Request{ID: 1, ObjectKey: "obj", Operation: "hello", Args: []Value{Int(1), String("x")}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeRequest(req, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeSmallRequest(b *testing.B) {
	req := &Request{ID: 1, ObjectKey: "obj", Operation: "hello", Args: []Value{Int(1), String("x")}}
	payload, err := EncodeRequest(req, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeMessage(payload); err != nil {
			b.Fatal(err)
		}
	}
}
