package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary encoding of Values.
//
// Each value is a one-byte tag followed by a payload:
//
//	0x00 nil
//	0x01 false
//	0x02 true
//	0x03 number     8-byte big-endian IEEE-754
//	0x04 string     uvarint length + bytes
//	0x05 bytes      uvarint length + bytes
//	0x06 table      uvarint arrayLen + values, uvarint hashLen + key/value pairs
//	0x07 objref     string endpoint + string key
//
// The format is self-delimiting; frames add an outer length prefix so a
// reader can reject oversized messages before decoding.

const (
	tagNil    = 0x00
	tagFalse  = 0x01
	tagTrue   = 0x02
	tagNumber = 0x03
	tagString = 0x04
	tagBytes  = 0x05
	tagTable  = 0x06
	tagObjRef = 0x07
)

// Encoding limits. These bound resource use when decoding untrusted input.
const (
	// MaxFrameSize is the largest frame a peer may send (16 MiB).
	MaxFrameSize = 16 << 20
	// maxDepth bounds table nesting during encode and decode.
	maxDepth = 64
)

// Errors returned by the codec.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	ErrTooDeep       = errors.New("wire: value nesting exceeds depth limit")
	ErrTruncated     = errors.New("wire: truncated input")
)

// AppendValue appends the binary encoding of v to dst and returns the
// extended slice.
func AppendValue(dst []byte, v Value) ([]byte, error) {
	return appendValue(dst, v, 0)
}

func appendValue(dst []byte, v Value, depth int) ([]byte, error) {
	if depth > maxDepth {
		return dst, ErrTooDeep
	}
	switch v.kind {
	case KindNil:
		return append(dst, tagNil), nil
	case KindBool:
		if v.b {
			return append(dst, tagTrue), nil
		}
		return append(dst, tagFalse), nil
	case KindNumber:
		dst = append(dst, tagNumber)
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(v.n)), nil
	case KindString:
		dst = append(dst, tagString)
		return appendString(dst, v.s), nil
	case KindBytes:
		dst = append(dst, tagBytes)
		return appendString(dst, v.s), nil
	case KindObjRef:
		dst = append(dst, tagObjRef)
		dst = appendString(dst, v.r.Endpoint)
		return appendString(dst, v.r.Key), nil
	case KindTable:
		dst = append(dst, tagTable)
		dst = binary.AppendUvarint(dst, uint64(len(v.t.arr)))
		var err error
		for _, e := range v.t.arr {
			if dst, err = appendValue(dst, e, depth+1); err != nil {
				return dst, err
			}
		}
		dst = binary.AppendUvarint(dst, uint64(len(v.t.hash)))
		// Deterministic order: encode pairs sorted by key, matching Pairs.
		var encodeErr error
		v.t.hashPairs(func(k, val Value) bool {
			if dst, encodeErr = appendValue(dst, k, depth+1); encodeErr != nil {
				return false
			}
			dst, encodeErr = appendValue(dst, val, depth+1)
			return encodeErr == nil
		})
		return dst, encodeErr
	default:
		return dst, fmt.Errorf("wire: cannot encode kind %v", v.kind)
	}
}

// hashPairs iterates only the hash part in sorted order.
func (t *Table) hashPairs(fn func(k, v Value) bool) {
	t.Pairs(func(k, v Value) bool {
		if n, ok := k.AsNumber(); ok && n == math.Trunc(n) {
			i := int(n)
			if i >= 1 && i <= len(t.arr) {
				return true // array part, skip
			}
		}
		return fn(k, v)
	})
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// Decoder reads values from a byte slice.
type Decoder struct {
	buf []byte
	pos int
}

// NewDecoder returns a decoder over buf. The decoder does not copy buf;
// decoded strings share its memory via Go string conversion (copied).
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Remaining reports how many undecoded bytes are left.
func (d *Decoder) Remaining() int { return len(d.buf) - d.pos }

// Value decodes the next value.
func (d *Decoder) Value() (Value, error) {
	return d.value(0)
}

func (d *Decoder) value(depth int) (Value, error) {
	if depth > maxDepth {
		return Nil(), ErrTooDeep
	}
	if d.pos >= len(d.buf) {
		return Nil(), ErrTruncated
	}
	tag := d.buf[d.pos]
	d.pos++
	switch tag {
	case tagNil:
		return Nil(), nil
	case tagFalse:
		return Bool(false), nil
	case tagTrue:
		return Bool(true), nil
	case tagNumber:
		if d.Remaining() < 8 {
			return Nil(), ErrTruncated
		}
		bits := binary.BigEndian.Uint64(d.buf[d.pos:])
		d.pos += 8
		return Number(math.Float64frombits(bits)), nil
	case tagString:
		s, err := d.str()
		if err != nil {
			return Nil(), err
		}
		return String(s), nil
	case tagBytes:
		s, err := d.str()
		if err != nil {
			return Nil(), err
		}
		return Value{kind: KindBytes, s: s}, nil
	case tagObjRef:
		ep, err := d.str()
		if err != nil {
			return Nil(), err
		}
		key, err := d.str()
		if err != nil {
			return Nil(), err
		}
		return Ref(ObjRef{Endpoint: ep, Key: key}), nil
	case tagTable:
		arrLen, err := d.uvarint()
		if err != nil {
			return Nil(), err
		}
		if arrLen > uint64(d.Remaining()) {
			return Nil(), ErrTruncated
		}
		t := &Table{arr: make([]Value, 0, arrLen)}
		for i := uint64(0); i < arrLen; i++ {
			e, err := d.value(depth + 1)
			if err != nil {
				return Nil(), err
			}
			t.arr = append(t.arr, e)
		}
		hashLen, err := d.uvarint()
		if err != nil {
			return Nil(), err
		}
		if hashLen > uint64(d.Remaining()) {
			return Nil(), ErrTruncated
		}
		for i := uint64(0); i < hashLen; i++ {
			k, err := d.value(depth + 1)
			if err != nil {
				return Nil(), err
			}
			v, err := d.value(depth + 1)
			if err != nil {
				return Nil(), err
			}
			if err := t.Set(k, v); err != nil {
				return Nil(), fmt.Errorf("wire: decode table: %w", err)
			}
		}
		return TableVal(t), nil
	default:
		return Nil(), fmt.Errorf("wire: unknown value tag 0x%02x", tag)
	}
}

func (d *Decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(d.Remaining()) {
		return "", ErrTruncated
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}

func (d *Decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	d.pos += n
	return v, nil
}

// DecodeValue decodes a single value from buf, requiring that buf contain
// exactly one value.
func DecodeValue(buf []byte) (Value, error) {
	d := NewDecoder(buf)
	v, err := d.Value()
	if err != nil {
		return Nil(), err
	}
	if d.Remaining() != 0 {
		return Nil(), fmt.Errorf("wire: %d trailing bytes after value", d.Remaining())
	}
	return v, nil
}

// EncodeValue encodes a single value into a fresh buffer.
func EncodeValue(v Value) ([]byte, error) {
	return AppendValue(nil, v)
}

// WriteFrame writes a length-prefixed frame containing payload to w. The
// header and payload go out in a single Write, so a frame is one syscall
// and cannot be torn in half by a mid-frame write deadline. Callers on hot
// paths avoid the payload copy by encoding straight into a FrameBuffer and
// calling its WriteFrame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	fb := GetFrameBuffer()
	fb.B = append(fb.B, payload...)
	err := fb.WriteFrame(w)
	PutFrameBuffer(fb)
	return err
}

// ReadFrame reads one length-prefixed frame from r, rejecting frames larger
// than MaxFrameSize.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrTruncated
		}
		return nil, err
	}
	return buf, nil
}
