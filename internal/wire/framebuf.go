package wire

import (
	"bufio"
	"encoding/binary"
	"io"
	"sync"
)

// Hot-path framing support: pooled encode buffers that carry the 4-byte
// length prefix inline, so a complete frame (header + payload) is built
// once and written with a single Write call, and a buffered frame reader
// that reuses its payload buffer across frames.
//
// The codec guarantees decoded values never alias the input buffer (all
// string/bytes payloads are copied by Go string conversion), which is what
// makes payload-buffer reuse safe.

// FrameBuffer is a reusable encode buffer whose first 4 bytes are reserved
// for the frame length prefix. Encode the payload by appending to B (after
// the reserved header), then call WriteTo, which patches the prefix and
// writes the whole frame in one Write.
type FrameBuffer struct {
	// B holds the frame under construction: 4 reserved header bytes
	// followed by the payload encoded so far.
	B []byte
}

// Payload returns the payload encoded so far (everything after the header).
func (fb *FrameBuffer) Payload() []byte { return fb.B[frameHeaderLen:] }

// WriteFrame patches the length prefix and writes header+payload as one Write.
func (fb *FrameBuffer) WriteFrame(w io.Writer) error {
	frame, err := fb.Frame()
	if err != nil {
		return err
	}
	_, err = w.Write(frame)
	return err
}

// Frame patches the length prefix and returns the complete frame
// (header + payload), ready to be written or coalesced into a batch. The
// slice aliases fb.B and is invalidated by PutFrameBuffer.
func (fb *FrameBuffer) Frame() ([]byte, error) {
	n := len(fb.B) - frameHeaderLen
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(fb.B[:frameHeaderLen], uint32(n))
	return fb.B, nil
}

const frameHeaderLen = 4

// maxPooledBuf bounds the capacity of buffers returned to the pool so one
// giant frame does not pin its memory for the life of the process.
const maxPooledBuf = 1 << 20

var frameBufPool = sync.Pool{
	New: func() any {
		return &FrameBuffer{B: make([]byte, frameHeaderLen, 512)}
	},
}

// GetFrameBuffer returns a pooled frame buffer with the header reserved and
// an empty payload. Return it with PutFrameBuffer once the frame has been
// written (the buffer must not be referenced afterwards).
func GetFrameBuffer() *FrameBuffer {
	fb := frameBufPool.Get().(*FrameBuffer)
	fb.B = fb.B[:frameHeaderLen]
	return fb
}

// PutFrameBuffer returns fb to the pool. Oversized buffers are dropped.
func PutFrameBuffer(fb *FrameBuffer) {
	if fb == nil || cap(fb.B) > maxPooledBuf {
		return
	}
	frameBufPool.Put(fb)
}

// FrameReader reads length-prefixed frames from a connection through an
// internal bufio.Reader, reusing one payload buffer across frames. The
// slice returned by Next is valid only until the following Next call:
// decode the frame (the codec copies everything it keeps) before reading
// the next one.
type FrameReader struct {
	br  *bufio.Reader
	buf []byte
}

// NewFrameReader returns a frame reader over r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, 8<<10)}
}

// Next reads one frame and returns its payload, rejecting frames larger
// than MaxFrameSize. The returned slice is reused by the next call.
func (fr *FrameReader) Next() ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(fr.br, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	var buf []byte
	if n > maxPooledBuf {
		// Oversized frame: serve it from a one-off allocation so the
		// retained buffer stays small.
		buf = make([]byte, n)
	} else {
		if cap(fr.buf) < n {
			fr.buf = make([]byte, n)
		}
		buf = fr.buf[:n]
	}
	if _, err := io.ReadFull(fr.br, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrTruncated
		}
		return nil, err
	}
	return buf, nil
}
