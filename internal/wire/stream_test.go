package wire

import (
	"testing"
)

func TestSubscribeRoundTrip(t *testing.T) {
	sub := &Subscribe{
		ID:        7,
		SubID:     42,
		ObjectKey: "monitor/LoadAvg",
		Topic:     "overload",
		Args:      []Value{String("return function() return true end"), Number(3)},
	}
	buf, err := AppendSubscribe(nil, sub)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := DecodeMessage(buf)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgSubscribe || msg.Sub == nil {
		t.Fatalf("decoded %v, want subscribe", msg.Type)
	}
	got := msg.Sub
	if got.ID != sub.ID || got.SubID != sub.SubID || got.ObjectKey != sub.ObjectKey || got.Topic != sub.Topic {
		t.Fatalf("header mismatch: %+v vs %+v", got, sub)
	}
	if len(got.Args) != 2 || !got.Args[0].Equal(sub.Args[0]) || !got.Args[1].Equal(sub.Args[1]) {
		t.Fatalf("args mismatch: %v", got.Args)
	}
}

func TestUnsubscribeRoundTrip(t *testing.T) {
	buf := AppendUnsubscribe(nil, 99)
	msg, err := DecodeMessage(buf)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgUnsubscribe || msg.UnsubID != 99 {
		t.Fatalf("decoded %v/%d, want unsubscribe/99", msg.Type, msg.UnsubID)
	}
}

func TestEventRoundTrip(t *testing.T) {
	ev := &Event{SubID: 42, Values: []Value{String("overload"), Number(1.5)}}
	buf, err := AppendEvent(nil, ev)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := DecodeMessage(buf)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgEvent || msg.Event == nil {
		t.Fatalf("decoded %v, want event", msg.Type)
	}
	if msg.Event.SubID != 42 || len(msg.Event.Values) != 2 ||
		!msg.Event.Values[0].Equal(ev.Values[0]) || !msg.Event.Values[1].Equal(ev.Values[1]) {
		t.Fatalf("event mismatch: %+v", msg.Event)
	}
}

func TestEventEmptyValues(t *testing.T) {
	buf, err := AppendEvent(nil, &Event{SubID: 1})
	if err != nil {
		t.Fatal(err)
	}
	msg, err := DecodeMessage(buf)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Event.SubID != 1 || len(msg.Event.Values) != 0 {
		t.Fatalf("event mismatch: %+v", msg.Event)
	}
}

func TestStreamDecodeTruncated(t *testing.T) {
	sub := &Subscribe{ID: 1, SubID: 2, ObjectKey: "k", Topic: "t", Args: []Value{Number(1)}}
	buf, err := AppendSubscribe(nil, sub)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := AppendEvent(nil, &Event{SubID: 3, Values: []Value{String("x")}})
	if err != nil {
		t.Fatal(err)
	}
	for _, full := range [][]byte{buf, AppendUnsubscribe(nil, 5), ev} {
		for i := 1; i < len(full); i++ {
			if _, err := DecodeMessage(full[:i]); err == nil {
				t.Fatalf("truncation at %d/%d decoded cleanly", i, len(full))
			}
		}
		// Trailing garbage must be rejected too.
		if _, err := DecodeMessage(append(append([]byte{}, full...), 0xff)); err == nil {
			t.Fatal("trailing byte decoded cleanly")
		}
	}
}
