package wire

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Robustness: the decoder must never panic on arbitrary input — it faces
// bytes from untrusted peers. These are property-style fuzz tests using
// testing/quick (the module is offline; no go-fuzz corpus).

func TestPropertyDecodeValueNeverPanics(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(args []reflect.Value, r *rand.Rand) {
			n := r.Intn(64)
			b := make([]byte, n)
			r.Read(b)
			args[0] = reflect.ValueOf(b)
		},
	}
	prop := func(b []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = DecodeValue(b)
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDecodeMessageNeverPanics(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(args []reflect.Value, r *rand.Rand) {
			n := r.Intn(96)
			b := make([]byte, n)
			r.Read(b)
			// Half the time, start with a valid message type byte so the
			// deeper decode paths get fuzzed too — all seven frame types,
			// including subscribe/unsubscribe/event.
			if n > 0 && r.Intn(2) == 0 {
				b[0] = byte(1 + r.Intn(int(MsgEvent)))
			}
			args[0] = reflect.ValueOf(b)
		},
	}
	prop := func(b []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = DecodeMessage(b)
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Mutation property: flipping any single byte of a valid encoding either
// decodes to something (possibly different) or errors — never panics, and
// never decodes to a value equal to the original unless the flipped byte
// was redundant (there are none in this format except within float
// payloads and lengths that can alias; we only assert no panic).
func TestPropertyBitFlipSafety(t *testing.T) {
	original := mustEncodeFuzz(t)
	for i := range original {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mutated := append([]byte(nil), original...)
			mutated[i] ^= flip
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic decoding mutation at byte %d: %v", i, r)
					}
				}()
				_, _ = DecodeValue(mutated)
			}()
		}
	}
}

func mustEncodeFuzz(t *testing.T) []byte {
	t.Helper()
	tb := NewTable()
	tb.Append(String("alpha"))
	tb.Append(Number(3.25))
	tb.SetString("ref", Ref(ObjRef{Endpoint: "tcp|h:1", Key: "k"}))
	inner := NewList(Bool(true), Bytes([]byte{1, 2, 3}))
	tb.SetString("inner", TableVal(inner))
	b, err := EncodeValue(TableVal(tb))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// ---- encode/decode round-trip properties ----
//
// The hot paths encode requests and replies into pooled, recycled buffers;
// these properties pin down that an encode into a dirty buffer followed by
// DecodeMessage reproduces every field exactly.

// randomValue (codec_test.go) supplies arbitrary Values for these
// properties; randomString covers the string-typed message fields.
func randomString(r *rand.Rand, max int) string {
	b := make([]byte, r.Intn(max))
	r.Read(b)
	return string(b)
}

func randomValues(r *rand.Rand) []Value {
	vs := make([]Value, r.Intn(4))
	for i := range vs {
		vs[i] = randomValue(r, 0)
	}
	return vs
}

func equalValues(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func TestPropertyRequestRoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(&Request{
				ID:        r.Uint64(),
				ObjectKey: randomString(r, 16),
				Operation: randomString(r, 16),
				Args:      randomValues(r),
				Deadline:  int64(r.Uint64()),
			})
			args[1] = reflect.ValueOf(r.Intn(2) == 0)
		},
	}
	prop := func(req *Request, oneway bool) bool {
		// Encode into a dirty pooled-style prefix to prove the append
		// forms do not depend on a fresh buffer.
		dirty := []byte{0xde, 0xad}
		buf, err := AppendRequest(dirty, req, oneway)
		if err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		msg, err := DecodeMessage(buf[len(dirty):])
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		wantType := MsgRequest
		if oneway {
			wantType = MsgOneway
		}
		if msg.Type != wantType || msg.Req == nil {
			t.Logf("type = %v, req = %v", msg.Type, msg.Req)
			return false
		}
		got := msg.Req
		if got.ID != req.ID || got.Deadline != req.Deadline ||
			got.ObjectKey != req.ObjectKey || got.Operation != req.Operation {
			t.Logf("fields: got %+v want %+v", got, req)
			return false
		}
		if !equalValues(got.Args, req.Args) {
			t.Logf("args: got %v want %v", got.Args, req.Args)
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyReplyRoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(args []reflect.Value, r *rand.Rand) {
			rep := &Reply{ID: r.Uint64()}
			if r.Intn(2) == 0 {
				// Error reply: Err must be non-empty (empty marks success),
				// and error replies carry no results.
				rep.Err = "e" + randomString(r, 12)
				rep.ErrCode = randomString(r, 8)
			} else {
				rep.Results = randomValues(r)
			}
			args[0] = reflect.ValueOf(rep)
		},
	}
	prop := func(rep *Reply) bool {
		dirty := []byte{0xbe, 0xef}
		buf, err := AppendReply(dirty, rep)
		if err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		msg, err := DecodeMessage(buf[len(dirty):])
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		wantType := MsgReply
		if rep.Err != "" {
			wantType = MsgErrorReply
		}
		if msg.Type != wantType || msg.Rep == nil {
			t.Logf("type = %v, rep = %v", msg.Type, msg.Rep)
			return false
		}
		got := msg.Rep
		if got.ID != rep.ID || got.Err != rep.Err || got.ErrCode != rep.ErrCode {
			t.Logf("fields: got %+v want %+v", got, rep)
			return false
		}
		if !equalValues(got.Results, rep.Results) {
			t.Logf("results: got %v want %v", got.Results, rep.Results)
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyFrameBufferRoundTrip drives the pooled single-write framing
// against the buffered frame reader: every payload written as one frame
// comes back byte-identical, across buffer reuse.
func TestPropertyFrameBufferRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var wireBytes bytes.Buffer
	var want [][]byte
	for i := 0; i < 64; i++ {
		payload := make([]byte, r.Intn(5000))
		r.Read(payload)
		want = append(want, payload)
		fb := GetFrameBuffer()
		fb.B = append(fb.B, payload...)
		if err := fb.WriteFrame(&wireBytes); err != nil {
			t.Fatal(err)
		}
		PutFrameBuffer(fb)
	}
	fr := NewFrameReader(&wireBytes)
	for i, w := range want {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("frame %d: %d bytes, want %d", i, len(got), len(w))
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("trailing read err = %v, want EOF", err)
	}
}
