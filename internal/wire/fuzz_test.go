package wire

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Robustness: the decoder must never panic on arbitrary input — it faces
// bytes from untrusted peers. These are property-style fuzz tests using
// testing/quick (the module is offline; no go-fuzz corpus).

func TestPropertyDecodeValueNeverPanics(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(args []reflect.Value, r *rand.Rand) {
			n := r.Intn(64)
			b := make([]byte, n)
			r.Read(b)
			args[0] = reflect.ValueOf(b)
		},
	}
	prop := func(b []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = DecodeValue(b)
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDecodeMessageNeverPanics(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(args []reflect.Value, r *rand.Rand) {
			n := r.Intn(96)
			b := make([]byte, n)
			r.Read(b)
			// Half the time, start with a valid message type byte so the
			// deeper decode paths get fuzzed too.
			if n > 0 && r.Intn(2) == 0 {
				b[0] = byte(1 + r.Intn(4))
			}
			args[0] = reflect.ValueOf(b)
		},
	}
	prop := func(b []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = DecodeMessage(b)
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Mutation property: flipping any single byte of a valid encoding either
// decodes to something (possibly different) or errors — never panics, and
// never decodes to a value equal to the original unless the flipped byte
// was redundant (there are none in this format except within float
// payloads and lengths that can alias; we only assert no panic).
func TestPropertyBitFlipSafety(t *testing.T) {
	original := mustEncodeFuzz(t)
	for i := range original {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mutated := append([]byte(nil), original...)
			mutated[i] ^= flip
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic decoding mutation at byte %d: %v", i, r)
					}
				}()
				_, _ = DecodeValue(mutated)
			}()
		}
	}
}

func mustEncodeFuzz(t *testing.T) []byte {
	t.Helper()
	tb := NewTable()
	tb.Append(String("alpha"))
	tb.Append(Number(3.25))
	tb.SetString("ref", Ref(ObjRef{Endpoint: "tcp|h:1", Key: "k"}))
	inner := NewList(Bool(true), Bytes([]byte{1, 2, 3}))
	tb.SetString("inner", TableVal(inner))
	b, err := EncodeValue(TableVal(tb))
	if err != nil {
		t.Fatal(err)
	}
	return b
}
