package wire

import "testing"

// Allocation-regression guards for the codec hot paths. The pooled-buffer
// overhaul got the append-style encoders to zero allocations per message;
// these tests fail if a change quietly reintroduces per-message garbage.
// Ceilings carry one or two allocations of slack over the measured counts
// so unrelated runtime/toolchain noise does not flake them.

func TestAllocGuardAppendRequest(t *testing.T) {
	req := &Request{
		ID:        7,
		ObjectKey: "echo",
		Operation: "do",
		Args:      []Value{Int(42), String("x")},
		Deadline:  123456789,
	}
	fb := GetFrameBuffer()
	defer PutFrameBuffer(fb)
	// Warm the buffer so steady-state reuse is what gets measured.
	out, err := AppendRequest(fb.B, req, false)
	if err != nil {
		t.Fatal(err)
	}
	fb.B = out
	allocs := testing.AllocsPerRun(200, func() {
		fb.B = fb.B[:frameHeaderLen]
		out, err := AppendRequest(fb.B, req, false)
		if err != nil {
			t.Fatal(err)
		}
		fb.B = out
	})
	if allocs > 0 {
		t.Fatalf("AppendRequest into warm pooled buffer: %.1f allocs/op, want 0", allocs)
	}
}

func TestAllocGuardAppendReply(t *testing.T) {
	rep := &Reply{ID: 7, Results: []Value{Int(42), String("x")}}
	fb := GetFrameBuffer()
	defer PutFrameBuffer(fb)
	out, err := AppendReply(fb.B, rep)
	if err != nil {
		t.Fatal(err)
	}
	fb.B = out
	allocs := testing.AllocsPerRun(200, func() {
		fb.B = fb.B[:frameHeaderLen]
		out, err := AppendReply(fb.B, rep)
		if err != nil {
			t.Fatal(err)
		}
		fb.B = out
	})
	if allocs > 0 {
		t.Fatalf("AppendReply into warm pooled buffer: %.1f allocs/op, want 0", allocs)
	}
}

func TestAllocGuardDecodeMessage(t *testing.T) {
	req := &Request{ID: 7, ObjectKey: "echo", Operation: "do", Args: []Value{Int(42)}, Deadline: 1}
	encReq, err := EncodeRequest(req, false)
	if err != nil {
		t.Fatal(err)
	}
	encRep, err := EncodeReply(&Reply{ID: 7, Results: []Value{Int(42)}})
	if err != nil {
		t.Fatal(err)
	}
	// Measured: 5 allocs (Request, Args backing array, two field strings,
	// Message) — the decoder copies what it keeps so frame buffers can be
	// recycled underneath it.
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := DecodeMessage(encReq); err != nil {
			t.Fatal(err)
		}
	}); allocs > 6 {
		t.Fatalf("DecodeMessage(request): %.1f allocs/op, want <= 6", allocs)
	}
	// Measured: 3 allocs (Reply, Results backing array, Message).
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := DecodeMessage(encRep); err != nil {
			t.Fatal(err)
		}
	}); allocs > 4 {
		t.Fatalf("DecodeMessage(reply): %.1f allocs/op, want <= 4", allocs)
	}
}
