package hostenv

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"autoadapt/internal/clock"
)

var epoch = time.Date(2002, 7, 1, 0, 0, 0, 0, time.UTC)

func newSimHost(name string) (*Host, *clock.Sim) {
	sim := clock.NewSim(epoch)
	h := New(Options{Name: name, Clock: sim})
	return h, sim
}

func TestLoadAvgStartsAtZero(t *testing.T) {
	h, _ := newSimHost("h")
	defer h.Close()
	one, five, fifteen, err := h.LoadAvg()
	if err != nil || one != 0 || five != 0 || fifteen != 0 {
		t.Fatalf("initial loadavg = %v %v %v, %v", one, five, fifteen, err)
	}
}

func TestLoadAvgConvergesToRunnable(t *testing.T) {
	h, _ := newSimHost("h")
	defer h.Close()
	h.SetBackground(4)
	// After many samples, each average converges to the runnable count.
	for i := 0; i < 3000; i++ {
		h.Sample()
	}
	one, five, fifteen, _ := h.LoadAvg()
	for _, v := range []float64{one, five, fifteen} {
		if math.Abs(v-4) > 0.05 {
			t.Fatalf("load averages did not converge: %v %v %v", one, five, fifteen)
		}
	}
}

func TestOneMinuteAverageLeadsFiveMinute(t *testing.T) {
	// The paper's "Increasing" aspect relies on load1 > load5 while load
	// rises; verify the kernel-style damping yields that signature.
	h, _ := newSimHost("h")
	defer h.Close()
	h.SetBackground(5)
	for i := 0; i < 12; i++ { // one minute of samples
		h.Sample()
	}
	one, five, _, _ := h.LoadAvg()
	if !(one > five) {
		t.Fatalf("rising load should show load1 (%v) > load5 (%v)", one, five)
	}
	// Let both averages converge near 5, then remove the load; on the way
	// down the fast average drops below the slow one.
	for i := 0; i < 180; i++ {
		h.Sample()
	}
	h.SetBackground(0)
	for i := 0; i < 24; i++ { // two minutes of decay
		h.Sample()
	}
	one, five, _, _ = h.LoadAvg()
	if !(one < five) {
		t.Fatalf("falling load should show load1 (%v) < load5 (%v)", one, five)
	}
}

func TestKernelDampingFormula(t *testing.T) {
	// One step from zero with n runnable must equal n·(1−e^(−5/60)).
	h, _ := newSimHost("h")
	defer h.Close()
	h.SetBackground(3)
	h.Sample()
	one, _, _, _ := h.LoadAvg()
	want := 3 * (1 - math.Exp(-5.0/60.0))
	if math.Abs(one-want) > 1e-9 {
		t.Fatalf("load1 after one sample = %v, want %v", one, want)
	}
}

func TestPropertyDampingMonotoneAndBounded(t *testing.T) {
	// Property: for constant runnable load n, every sample moves each
	// average strictly toward n and never overshoots.
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(float64(r.Intn(20)))
			args[1] = reflect.ValueOf(r.Intn(200) + 1)
		},
	}
	prop := func(n float64, steps int) bool {
		h, _ := newSimHost("p")
		defer h.Close()
		h.SetBackground(n)
		prev := 0.0
		for i := 0; i < steps; i++ {
			h.Sample()
			one, _, _, _ := h.LoadAvg()
			if one > n+1e-9 { // never overshoots
				return false
			}
			if n > 0 && one < prev-1e-9 { // monotone non-decreasing
				return false
			}
			prev = one
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestServeDilatesWithBackgroundLoad(t *testing.T) {
	h, sim := newSimHost("h")
	defer h.Close()
	ctx := context.Background()

	run := func(bg float64) time.Duration {
		h.SetBackground(bg)
		done := make(chan time.Duration, 1)
		go func() {
			d, err := h.Serve(ctx, 100*time.Millisecond)
			if err != nil {
				t.Error(err)
			}
			done <- d
		}()
		// Drive simulated time until the task finishes.
		deadline := time.Now().Add(5 * time.Second)
		for {
			select {
			case d := <-done:
				return d
			default:
			}
			if time.Now().After(deadline) {
				t.Fatal("serve never completed")
			}
			sim.Advance(50 * time.Millisecond)
		}
	}

	idle := run(0)
	if idle != 100*time.Millisecond {
		t.Fatalf("idle service time = %v, want 100ms", idle)
	}
	loaded := run(9) // runnable = 9 bg + 1 self = 10× dilation
	if loaded != time.Second {
		t.Fatalf("loaded service time = %v, want 1s", loaded)
	}
}

func TestServeCountsConcurrentTasks(t *testing.T) {
	h, sim := newSimHost("h")
	defer h.Close()
	ctx := context.Background()
	const tasks = 4
	var wg sync.WaitGroup
	durations := make([]time.Duration, tasks)
	started := make(chan struct{}, tasks)
	for i := 0; i < tasks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			d, err := h.Serve(ctx, 100*time.Millisecond)
			if err != nil {
				t.Error(err)
			}
			durations[i] = d
		}(i)
	}
	for i := 0; i < tasks; i++ {
		<-started
	}
	// Let all tasks register before advancing time.
	waitUntil(t, func() bool { return h.Runnable() == tasks })
	for i := 0; i < 100 && h.Runnable() > 0; i++ {
		sim.Advance(100 * time.Millisecond)
	}
	wg.Wait()
	// At least one task saw contention dilation > 1×.
	var maxD time.Duration
	for _, d := range durations {
		if d > maxD {
			maxD = d
		}
	}
	if maxD < 200*time.Millisecond {
		t.Fatalf("max dilated duration = %v, want >= 200ms under contention", maxD)
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServeContextCancel(t *testing.T) {
	h, _ := newSimHost("h")
	defer h.Close()
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := h.Serve(ctx, time.Hour)
		errCh <- err
	}()
	waitUntil(t, func() bool { return h.Runnable() == 1 })
	cancel()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("cancelled serve returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled serve hung")
	}
	if h.Served() != 0 {
		t.Fatal("cancelled request counted as served")
	}
	waitUntil(t, func() bool { return h.Runnable() == 0 })
}

func TestServeOnClosedHost(t *testing.T) {
	h, _ := newSimHost("h")
	h.Close()
	h.Close() // idempotent
	if _, err := h.Serve(context.Background(), time.Millisecond); err != ErrHostClosed {
		t.Fatalf("err = %v, want ErrHostClosed", err)
	}
}

func TestAutoSampleLoop(t *testing.T) {
	sim := clock.NewSim(epoch)
	h := New(Options{Name: "auto", Clock: sim, AutoSample: true})
	defer h.Close()
	h.SetBackground(2)
	// Wait for the sampler to arm, then advance a minute.
	waitUntil(t, func() bool { return sim.PendingTimers() > 0 })
	for i := 0; i < 12; i++ {
		sim.Advance(SamplePeriod)
		waitUntil(t, func() bool { return sim.PendingTimers() > 0 })
	}
	one, _, _, _ := h.LoadAvg()
	if one <= 0.5 {
		t.Fatalf("auto-sampled load1 = %v, want > 0.5 after a minute at load 2", one)
	}
}

func TestStatsAndReset(t *testing.T) {
	h, sim := newSimHost("h")
	defer h.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := h.Serve(context.Background(), 10*time.Millisecond); err != nil {
			t.Error(err)
		}
	}()
	waitUntil(t, func() bool { return h.Runnable() == 1 })
	sim.Advance(20 * time.Millisecond)
	<-done
	if h.Served() != 1 || h.BusyTime() == 0 {
		t.Fatalf("served=%d busy=%v", h.Served(), h.BusyTime())
	}
	h.ResetStats()
	if h.Served() != 0 || h.BusyTime() != 0 {
		t.Fatal("ResetStats did not clear counters")
	}
}

func TestNegativeBackgroundClamped(t *testing.T) {
	h, _ := newSimHost("h")
	defer h.Close()
	h.SetBackground(-5)
	if h.Background() != 0 {
		t.Fatalf("Background = %v, want 0", h.Background())
	}
}

func TestDefaultCapacityAndName(t *testing.T) {
	h := New(Options{Name: "named", Clock: clock.NewSim(epoch)})
	defer h.Close()
	if h.Name() != "named" {
		t.Fatalf("Name = %q", h.Name())
	}
}
