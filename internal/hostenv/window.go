package hostenv

import "time"

// Windowed accounting: the synchronous mode used by the experiment driver
// (internal/experiment). Instead of occupying a run-queue slot for a
// dilated wall-clock interval (Serve), requests deposit their CPU demand
// into the current accounting window with RecordWork; SampleWindow then
// converts the window's accumulated demand into an average runnable-task
// contribution (utilization) and feeds the kernel-style load averages.
// This keeps multi-minute experiments single-threaded and deterministic
// while preserving the feedback loop the paper's example depends on:
// offered work raises the load average, and the load average dilates
// response times.

// RecordWork accounts one request with the given base CPU demand and
// returns the dilated response time it experienced, computed from the
// host's current contention (background + previous window's utilization).
func (h *Host) RecordWork(demand time.Duration) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	d := time.Duration(float64(demand) * h.dilationLocked())
	h.windowWork += demand
	h.served++
	h.busyTime += d
	return d
}

// Dilation reports the current service-time dilation factor:
// max(1, (background + window utilization) / capacity).
func (h *Host) Dilation() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dilationLocked()
}

func (h *Host) dilationLocked() float64 {
	d := (h.bg + h.lastRho + float64(h.active)) / h.opts.Capacity
	if d < 1 {
		return 1
	}
	return d
}

// SampleWindow closes the current accounting window of length dt: the
// window's demand becomes a utilization term (demand/dt), the load
// averages take one damped step against runnable = background + that
// utilization, and the window resets.
func (h *Host) SampleWindow(dt time.Duration) {
	if dt <= 0 {
		dt = SamplePeriod
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.lastRho = h.windowWork.Seconds() / dt.Seconds()
	h.windowWork = 0
	n := h.bg + h.lastRho + float64(h.active)
	for i, period := range loadPeriods {
		e := sampleDecay(dt, period)
		h.loads[i] = h.loads[i]*e + n*(1-e)
	}
}

// Utilization reports the previous window's request-driven utilization.
func (h *Host) Utilization() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastRho
}
