// Package hostenv simulates execution hosts: the substitution (DESIGN.md
// §2.3) for the Linux machines the paper ran its load-sharing example on.
//
// Each Host models a CPU with a run queue. Work comes from two sources:
// background load (what the paper injects by hand to unbalance the system)
// and the service demands of actual requests flowing through the ORB. The
// host computes 1/5/15-minute load averages with the same exponentially
// damped update the Linux kernel uses, sampled every 5 seconds (LOAD_FREQ),
// so a monitor reading a simulated host sees exactly the signal the paper's
// Fig. 3 monitor reads from /proc/loadavg.
//
// Service times dilate with contention: a request whose base demand is d
// completes after d·max(1, runnable/capacity) — a processor-sharing
// approximation. That preserves the behaviour the paper's experiment
// depends on: a loaded server answers slowly, and moving clients away from
// it lowers both its load average and its response times.
package hostenv

import (
	"context"
	"errors"
	"math"
	"sync"
	"time"

	"autoadapt/internal/clock"
)

// SamplePeriod is the load-average sampling interval (Linux LOAD_FREQ).
const SamplePeriod = 5 * time.Second

// Damping periods for the three load averages.
var loadPeriods = [3]time.Duration{time.Minute, 5 * time.Minute, 15 * time.Minute}

// ErrHostClosed is returned by Serve on a closed host.
var ErrHostClosed = errors.New("hostenv: host closed")

// Options configures a simulated host.
type Options struct {
	// Name identifies the host in diagnostics.
	Name string
	// Capacity is the number of CPUs (default 1).
	Capacity float64
	// Clock drives sampling and service timing. Required; experiments
	// pass a *clock.Sim.
	Clock clock.Clock
	// AutoSample starts the 5-second sampling loop. When false the
	// embedding test/experiment calls Sample explicitly.
	AutoSample bool
}

// Host is one simulated machine.
type Host struct {
	opts Options

	mu       sync.Mutex
	active   int     // in-flight request tasks
	bg       float64 // background runnable tasks (may be fractional)
	loads    [3]float64
	closed   bool
	served   int64
	busyTime time.Duration

	// Windowed accounting (see window.go).
	windowWork time.Duration
	lastRho    float64

	stop chan struct{}
	done chan struct{}
}

// New creates a host. With AutoSample, the sampling loop runs until Close.
func New(opts Options) *Host {
	if opts.Capacity <= 0 {
		opts.Capacity = 1
	}
	if opts.Clock == nil {
		opts.Clock = clock.Real{}
	}
	h := &Host{opts: opts}
	if opts.AutoSample {
		h.stop = make(chan struct{})
		h.done = make(chan struct{})
		go h.sampleLoop()
	}
	return h
}

// Name returns the host's name.
func (h *Host) Name() string { return h.opts.Name }

// Close stops the sampling loop. In-flight Serve calls complete normally.
func (h *Host) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	h.mu.Unlock()
	if h.stop != nil {
		close(h.stop)
		<-h.done
	}
}

func (h *Host) sampleLoop() {
	defer close(h.done)
	for {
		ch, stopTimer := h.opts.Clock.After(SamplePeriod)
		select {
		case <-h.stop:
			stopTimer()
			return
		case <-ch:
			h.Sample()
		}
	}
}

// SetBackground sets the host's background runnable-task count — the
// knob the experiments turn to unbalance the system, standing in for the
// paper's externally submitted load.
func (h *Host) SetBackground(n float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if n < 0 {
		n = 0
	}
	h.bg = n
}

// Background returns the current background load.
func (h *Host) Background() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bg
}

// Runnable reports the instantaneous run-queue length (background +
// in-flight requests).
func (h *Host) Runnable() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.runnableLocked()
}

func (h *Host) runnableLocked() float64 { return h.bg + float64(h.active) }

// Sample performs one load-average update step, exactly as the Linux
// kernel's calc_load: load' = load·e^(−Δt/τ) + n·(1−e^(−Δt/τ)).
func (h *Host) Sample() {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := h.runnableLocked()
	for i, period := range loadPeriods {
		e := sampleDecay(SamplePeriod, period)
		h.loads[i] = h.loads[i]*e + n*(1-e)
	}
}

// sampleDecay is the kernel damping coefficient e^(−Δt/τ).
func sampleDecay(dt, period time.Duration) float64 {
	return math.Exp(-dt.Seconds() / period.Seconds())
}

// LoadAvg implements monitor.LoadSource: the simulated /proc/loadavg.
func (h *Host) LoadAvg() (one, five, fifteen float64, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.loads[0], h.loads[1], h.loads[2], nil
}

// SetLoadAvg forces the averages directly (tests and warm starts).
func (h *Host) SetLoadAvg(one, five, fifteen float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.loads = [3]float64{one, five, fifteen}
}

// Serve simulates executing one request with the given base CPU demand:
// it occupies a run-queue slot for the dilated service time, sleeping on
// the host's clock. It returns the dilated duration actually spent.
func (h *Host) Serve(ctx context.Context, demand time.Duration) (time.Duration, error) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return 0, ErrHostClosed
	}
	h.active++
	dilation := h.runnableLocked() / h.opts.Capacity
	if dilation < 1 {
		dilation = 1
	}
	h.mu.Unlock()

	d := time.Duration(float64(demand) * dilation)
	ch, stopTimer := h.opts.Clock.After(d)
	var err error
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-ch:
	case <-done:
		stopTimer()
		err = ctx.Err()
	}

	h.mu.Lock()
	h.active--
	if err == nil {
		h.served++
		h.busyTime += d
	}
	h.mu.Unlock()
	return d, err
}

// Served reports how many requests completed on this host.
func (h *Host) Served() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.served
}

// BusyTime reports accumulated dilated service time.
func (h *Host) BusyTime() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.busyTime
}

// ResetStats clears served/busy counters (between experiment phases).
func (h *Host) ResetStats() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.served = 0
	h.busyTime = 0
}
