package hostenv

import (
	"math"
	"testing"
	"time"
)

func TestRecordWorkDilatesAndAccounts(t *testing.T) {
	h, _ := newSimHost("w")
	defer h.Close()
	// Idle host: no dilation.
	d := h.RecordWork(100 * time.Millisecond)
	if d != 100*time.Millisecond {
		t.Fatalf("idle dilated = %v", d)
	}
	if h.Served() != 1 || h.BusyTime() != 100*time.Millisecond {
		t.Fatalf("served=%d busy=%v", h.Served(), h.BusyTime())
	}
	// Background load dilates subsequent work.
	h.SetBackground(4)
	d = h.RecordWork(100 * time.Millisecond)
	if d != 400*time.Millisecond { // (4 bg + 0 rho + 0 active)/1 cpu = 4x
		t.Fatalf("loaded dilated = %v, want 400ms", d)
	}
}

func TestDilationIncludesPreviousWindowUtilization(t *testing.T) {
	h, _ := newSimHost("w")
	defer h.Close()
	// Deposit 2.5s of demand into a 5s window: utilization 0.5.
	h.RecordWork(2500 * time.Millisecond)
	h.SampleWindow(5 * time.Second)
	if got := h.Utilization(); got != 0.5 {
		t.Fatalf("Utilization = %v, want 0.5", got)
	}
	if got := h.Dilation(); got != 1 { // 0.5 < 1 cpu → no dilation
		t.Fatalf("Dilation = %v, want 1", got)
	}
	// Overload: 10s of demand in 5s → utilization 2 → dilation 2.
	h.RecordWork(10 * time.Second)
	h.SampleWindow(5 * time.Second)
	if got := h.Dilation(); got != 2 {
		t.Fatalf("Dilation = %v, want 2", got)
	}
}

func TestSampleWindowFeedsLoadAverages(t *testing.T) {
	h, _ := newSimHost("w")
	defer h.Close()
	// One window of full utilization: load1 takes one kernel step toward 1.
	h.RecordWork(5 * time.Second)
	h.SampleWindow(5 * time.Second)
	one, _, _, _ := h.LoadAvg()
	want := 1 * (1 - math.Exp(-5.0/60.0))
	if math.Abs(one-want) > 1e-9 {
		t.Fatalf("load1 = %v, want %v", one, want)
	}
	// The window resets: an idle window decays the average.
	h.SampleWindow(5 * time.Second)
	two, _, _, _ := h.LoadAvg()
	if !(two < one) {
		t.Fatalf("load1 did not decay: %v -> %v", one, two)
	}
}

func TestSampleWindowDefaultPeriod(t *testing.T) {
	h, _ := newSimHost("w")
	defer h.Close()
	h.SetBackground(1)
	h.SampleWindow(0) // defaults to SamplePeriod
	one, _, _, _ := h.LoadAvg()
	if one == 0 {
		t.Fatal("default-period sample had no effect")
	}
}

func TestSetLoadAvgDirect(t *testing.T) {
	h, _ := newSimHost("w")
	defer h.Close()
	h.SetLoadAvg(1.5, 2.5, 3.5)
	one, five, fifteen, err := h.LoadAvg()
	if err != nil || one != 1.5 || five != 2.5 || fifteen != 3.5 {
		t.Fatalf("SetLoadAvg round trip = %v %v %v, %v", one, five, fifteen, err)
	}
}

func TestCapacityDividesDilation(t *testing.T) {
	h := New(Options{Name: "smp", Capacity: 4})
	defer h.Close()
	h.SetBackground(4)
	// 4 runnable on 4 CPUs: no dilation.
	if got := h.Dilation(); got != 1 {
		t.Fatalf("Dilation on 4-cpu host = %v, want 1", got)
	}
	h.SetBackground(8)
	if got := h.Dilation(); got != 2 {
		t.Fatalf("Dilation = %v, want 2", got)
	}
}
