package experiment

import (
	"context"
	"errors"
	"testing"
	"time"

	"autoadapt/internal/agent"
	"autoadapt/internal/baseline"
	"autoadapt/internal/clock"
	"autoadapt/internal/monitor"
	"autoadapt/internal/orb"
	"autoadapt/internal/trading"
	"autoadapt/internal/wire"
)

var e11Epoch = time.Date(2002, 7, 1, 0, 0, 0, 0, time.UTC)

// e11Servant answers hello with its host name, so the test can see which
// replica served each invocation.
func e11Servant(name string) orb.Servant {
	return orb.ServantFunc(func(op string, args []wire.Value) ([]wire.Value, error) {
		if op == "hello" {
			return []wire.Value{wire.String("hello from " + name)}, nil
		}
		return nil, orb.Appf("no such operation %q", op)
	})
}

// e11Settle advances the simulated clock by d and waits until the world's
// goroutines (trader reaper, host-2's monitor and heartbeat) have re-armed
// their timers, so sim-driven state is stable before asserting.
func e11Settle(t *testing.T, sim *clock.Sim, d time.Duration, timers int) {
	t.Helper()
	sim.Advance(d)
	deadline := time.Now().Add(5 * time.Second)
	for sim.PendingTimers() != timers {
		if time.Now().After(deadline) {
			t.Fatalf("pending timers stuck at %d, want %d", sim.PendingTimers(), timers)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestE11CrashFailover is experiment E11: an agent crashes mid-load (its
// connection is severed by the fault injector and its process is gone), and
// the liveness layer heals around it end to end —
//
//   - the rebinding proxy re-queries the trader, skips the dead replica's
//     still-registered offer, and completes the invocation on the survivor
//     (no invocation lost);
//   - the crashed agent's offer, never renewed, drops out of Query and
//     OfferCount within one lease TTL and is reaped;
//   - the circuit breaker answers further invocations of the dead endpoint
//     in a fraction of the retry/backoff path's time, without dialing.
func TestE11CrashFailover(t *testing.T) {
	ctx := context.Background()
	sim := clock.NewSim(e11Epoch)
	base := orb.NewInprocNetwork()
	fnet := orb.NewFaultNetwork(base)

	// Trader on the simulated clock: 30s offer leases, reaped every 10s.
	resolver := orb.NewClient(base)
	defer resolver.Close()
	tr := trading.NewTrader(trading.ClientResolver{Client: resolver})
	tr.SetClock(sim)
	tr.SetLeaseTTL(30 * time.Second)
	tr.AddType(trading.ServiceType{Name: ServiceTypeName, Interface: "Service"})
	stopReaper := tr.StartReaper(10 * time.Second)
	defer stopReaper()
	trSrv, err := orb.NewServer(orb.ServerOptions{Network: base, Address: "trader"})
	if err != nil {
		t.Fatal(err)
	}
	defer trSrv.Close()
	trRef := trSrv.Register(trading.DefaultObjectKey, "", trading.NewServant(tr))

	// Control plane (trader queries, exports) on a clean client.
	ctl := orb.NewClient(base)
	defer ctl.Close()
	lookup := trading.NewLookup(ctl, trRef)

	// host-1: the replica that will crash. Its offer carries a static (low)
	// LoadAvg, making it the preferred replica — and, once crashed, nothing
	// renews its lease.
	h1, err := orb.NewServer(orb.ServerOptions{Network: base, Address: "host-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer h1.Close()
	ref1 := h1.Register("service", "", e11Servant("host-1"))
	if _, err := tr.Export(ServiceTypeName, ref1, map[string]trading.PropValue{
		"LoadAvg": {Static: wire.Number(0.2)},
		"Host":    {Static: wire.String("host-1")},
	}); err != nil {
		t.Fatal(err)
	}

	// host-2: a live agent whose heartbeat keeps its lease renewed.
	ag, err := agent.Start(ctx, agent.Options{
		Network:     base,
		Address:     "host-2",
		Lookup:      lookup,
		ServiceType: ServiceTypeName,
		Servant:     e11Servant("host-2"),
		LoadSource: monitor.LoadSourceFunc(func() (float64, float64, float64, error) {
			return 1.5, 1.5, 1.5, nil
		}),
		Clock:       sim,
		LeaseTTL:    30 * time.Second,
		StaticProps: map[string]wire.Value{"Host": wire.String("host-2")},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ag.Close(context.Background())
	ref2 := ag.ServiceRef()

	// Data plane: the rebinding proxy invokes through the fault injector
	// with retry/backoff and a per-endpoint circuit breaker.
	cli := orb.NewClientOpts(orb.ClientOptions{
		Networks: []orb.Network{fnet},
		Retry:    orb.RetryPolicy{MaxAttempts: 3, BaseBackoff: 20 * time.Millisecond, Multiplier: 2},
		Breaker:  orb.BreakerPolicy{Threshold: 3, Cooldown: time.Hour},
	})
	defer cli.Close()
	rb := baseline.NewRebinding(cli, lookup, ServiceTypeName, "", "min LoadAvg")
	if err := rb.Bind(ctx); err != nil {
		t.Fatal(err)
	}
	if rb.Current() != ref1 {
		t.Fatalf("initial binding = %v, want the preferred host-1", rb.Current())
	}

	// Steady load against host-1; its connection is armed to be severed
	// after the third reply — the crash happens mid-load.
	fnet.SeverNextConnAfterFrames(3)
	for i := 0; i < 3; i++ {
		rs, err := rb.Invoke(ctx, "hello")
		if err != nil || rs[0].Str() != "hello from host-1" {
			t.Fatalf("warm invoke %d = %v, %v", i, rs, err)
		}
	}

	// The crash: the in-flight connection is dead (sever) and so is the
	// process (server closed). The trader still lists host-1's offer — its
	// lease has not expired — so the rebinder must skip the ref that just
	// failed, not trust the trader blindly.
	_ = h1.Close()
	if n := tr.OfferCount(); n != 2 {
		t.Fatalf("offers right after crash = %d, want 2 (lease not yet expired)", n)
	}
	rs, err := rb.Invoke(ctx, "hello")
	if err != nil {
		t.Fatalf("invocation lost in the crash: %v", err)
	}
	if rs[0].Str() != "hello from host-2" {
		t.Fatalf("post-crash reply = %q, want the survivor", rs[0].Str())
	}
	st := rb.Stats()
	if st.Rebinds != 1 {
		t.Fatalf("stats after failover = %+v, want exactly one rebind", st)
	}

	// Breaker criterion, measured on a fresh client so the attempt count
	// is deterministic: the first invocation of the dead endpoint burns
	// the full retry/backoff path (3 dials, 20ms+40ms backoff) and trips
	// the breaker; the second fails fast without touching the network.
	cli2 := orb.NewClientOpts(orb.ClientOptions{
		Networks: []orb.Network{fnet},
		Retry:    orb.RetryPolicy{MaxAttempts: 3, BaseBackoff: 20 * time.Millisecond, Multiplier: 2},
		Breaker:  orb.BreakerPolicy{Threshold: 3, Cooldown: time.Hour},
	})
	defer cli2.Close()
	start := time.Now()
	if _, err := cli2.Invoke(ctx, ref1, "hello"); err == nil {
		t.Fatal("invoking the crashed host succeeded")
	}
	d1 := time.Since(start)
	if d1 < 60*time.Millisecond {
		t.Fatalf("retry path took %v, want >= 60ms of backoff", d1)
	}
	if state := cli2.BreakerState(ref1.Endpoint); state != orb.BreakerOpen {
		t.Fatalf("breaker after retry path = %s, want open", state)
	}
	dialsBefore := fnet.Dials()
	start = time.Now()
	_, err = cli2.Invoke(ctx, ref1, "hello")
	d2 := time.Since(start)
	if !errors.Is(err, orb.ErrCircuitOpen) {
		t.Fatalf("fast-fail err = %v, want ErrCircuitOpen", err)
	}
	if fnet.Dials() != dialsBefore {
		t.Fatal("breaker fast-fail dialed the dead endpoint")
	}
	if d2 > d1/4 {
		t.Fatalf("fast-fail took %v vs retry path %v; want <= 1/4", d2, d1)
	}
	t.Logf("E11 latency: retry/backoff path %v, breaker fast-fail %v", d1, d2)

	// Lease criterion: within one TTL of the crash, the dead offer stops
	// matching while host-2's heartbeat keeps the survivor registered.
	// Steady sim timers: trader reaper + host-2 monitor + host-2 heartbeat.
	for i := 0; i < 7; i++ { // 35 simulated seconds in 5s steps
		e11Settle(t, sim, 5*time.Second, 3)
	}
	if n := tr.OfferCount(); n != 1 {
		t.Fatalf("offers one TTL after crash = %d, want only the survivor", n)
	}
	results, err := lookup.Query(ctx, ServiceTypeName, "", "min LoadAvg", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Offer.Ref != ref2 {
		t.Fatalf("query one TTL after crash = %v, want only host-2", results)
	}

	// A client binding fresh now never even sees the dead replica.
	rb2 := baseline.NewRebinding(cli, lookup, ServiceTypeName, "", "min LoadAvg")
	if err := rb2.Bind(ctx); err != nil {
		t.Fatal(err)
	}
	if rb2.Current() != ref2 {
		t.Fatalf("fresh binding = %v, want host-2", rb2.Current())
	}
}
