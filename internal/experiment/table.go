package experiment

import (
	"fmt"
	"strings"
)

// Table renders experiment results as an aligned text table — the rows the
// paper's evaluation section would print.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped and
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the accumulated rows.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// F formats a float with 3 significant decimals for table cells.
func F(x float64) string { return fmt.Sprintf("%.3f", x) }

// Ms formats seconds as milliseconds for table cells.
func Ms(seconds float64) string { return fmt.Sprintf("%.1fms", seconds*1000) }

// I formats an integer cell.
func I(x int64) string { return fmt.Sprintf("%d", x) }
