package experiment

import "testing"

// E16 shape: a latency fault the load average cannot see. The p99 policy
// must route around the faulty server within one SLO window and win on
// client-observed tail latency; the loadavg policy keeps feeding it. After
// the fault clears, decay-on-empty must re-admit the server.
func TestSLORoutingLatencyAwareBeatsLoadAvg(t *testing.T) {
	cfg := SLORouteConfig{}
	p99, err := SLORouting(cfg, PolicyP99Route)
	if err != nil {
		t.Fatal(err)
	}
	loadavg, err := SLORouting(cfg, PolicyLoadAvgRoute)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("p99 policy:     requests=%d p50=%.1fms p99=%.1fms fault_p50=%.1fms fault_p99=%.1fms share_faulty=%.3f readmitted=%d per-server=%v",
		p99.Requests, p99.P50Ms, p99.P99Ms, p99.FaultP50Ms, p99.FaultP99Ms, p99.FaultShareFaulty, p99.RecoveryFaulty, p99.PerServer)
	t.Logf("loadavg policy: requests=%d p50=%.1fms p99=%.1fms fault_p50=%.1fms fault_p99=%.1fms share_faulty=%.3f readmitted=%d per-server=%v",
		loadavg.Requests, loadavg.P50Ms, loadavg.P99Ms, loadavg.FaultP50Ms, loadavg.FaultP99Ms, loadavg.FaultShareFaulty, loadavg.RecoveryFaulty, loadavg.PerServer)

	// Acceptance: the latency-aware policy at least halves the fault-window
	// tail latency.
	if p99.FaultP99Ms >= loadavg.FaultP99Ms/2 {
		t.Errorf("fault-window p99: latency-aware %.1fms, loadavg %.1fms — want < half",
			p99.FaultP99Ms, loadavg.FaultP99Ms)
	}
	// The loadavg policy keeps routing a substantial share to the faulty
	// server (it cannot see the fault); the p99 policy mostly avoids it.
	if loadavg.FaultShareFaulty < 0.2 {
		t.Errorf("loadavg fault share to faulty server = %.3f, expected >= 0.2 (fault invisible to LoadAvg)",
			loadavg.FaultShareFaulty)
	}
	if p99.FaultShareFaulty > 0.15 {
		t.Errorf("p99 fault share to faulty server = %.3f, expected <= 0.15", p99.FaultShareFaulty)
	}
	// Decay-on-empty re-admits the server after recovery: it must win
	// traffic again under the p99 policy, not stay quarantined forever.
	if p99.RecoveryFaulty == 0 {
		t.Error("p99 policy never re-admitted the recovered server (decay-on-empty broken?)")
	}
}
