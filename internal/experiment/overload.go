package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"autoadapt/internal/monitor"
	"autoadapt/internal/orb"
	"autoadapt/internal/wire"
)

// E15 — overload protection. A server fronts a capacity-limited resource
// (Slots concurrent executions of ServiceTime each) and is offered
// LoadFactor times its capacity for Duration. The governed mode runs the
// admission-controlled dispatch pool (MaxConcurrent + MaxQueue + deadline
// shedding); the ungoverned baseline is the legacy unbounded spill
// (MaxConcurrent < 0) that admits everything. The claim under test: the
// governed server keeps goodput near capacity and latency bounded with a
// flat goroutine count, while the baseline queues itself to death.

// OverloadConfig sizes the E15 overload experiment.
type OverloadConfig struct {
	Slots       int           // concurrent capacity of the backing resource
	ServiceTime time.Duration // time one request occupies a slot
	LoadFactor  float64       // offered load as a multiple of capacity
	Duration    time.Duration // offered-load window
	Deadline    time.Duration // per-request deadline
	// Governed-mode admission knobs.
	MaxConcurrent int
	MaxQueue      int
	// Waiters bounds client-side result collection concurrency.
	Waiters int
}

// OverloadResult is one mode's outcome.
type OverloadResult struct {
	Mode      string
	Offered   int // requests sent
	Good      int // completed within the deadline
	Shed      int // refused at admission (ErrOverloaded)
	Missed    int // admitted but missed the deadline
	SendErrs  int
	Capacity  int     // requests the resource could serve in Duration
	Goodput   float64 // Good / Capacity
	P50Ms     float64 // over admitted requests; misses censored at Deadline
	P99Ms     float64
	MaxGrowth int // peak goroutine growth over the pre-storm baseline
	Stats     orb.ServerStats
}

// Overload runs the governed mode and the ungoverned baseline.
func Overload(cfg OverloadConfig) ([]OverloadResult, error) {
	if cfg.Waiters <= 0 {
		cfg.Waiters = 64
	}
	var out []OverloadResult
	for _, mode := range []struct {
		name          string
		maxConc, maxQ int
	}{
		{"governed", cfg.MaxConcurrent, cfg.MaxQueue},
		{"ungoverned", -1, 0},
	} {
		r, err := runOverload(cfg, mode.name, mode.maxConc, mode.maxQ)
		if err != nil {
			return nil, fmt.Errorf("experiment: overload %s: %w", mode.name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func runOverload(cfg OverloadConfig, mode string, maxConc, maxQ int) (OverloadResult, error) {
	net := orb.NewInprocNetwork()
	srv, err := orb.NewServer(orb.ServerOptions{
		Network: net, Address: "overload-host",
		MaxConcurrent: maxConc, MaxQueue: maxQ,
	})
	if err != nil {
		return OverloadResult{}, err
	}
	defer srv.Close()

	// The backing resource: Slots semaphore tokens, held ServiceTime each.
	slots := make(chan struct{}, cfg.Slots)
	for i := 0; i < cfg.Slots; i++ {
		slots <- struct{}{}
	}
	ref := srv.Register("svc", "", orb.ServantFunc(func(op string, args []wire.Value) ([]wire.Value, error) {
		<-slots
		time.Sleep(cfg.ServiceTime)
		slots <- struct{}{}
		return nil, nil
	}))
	client := orb.NewClient(net)
	defer client.Close()

	interval := time.Duration(float64(cfg.ServiceTime) / (float64(cfg.Slots) * cfg.LoadFactor))
	total := int(cfg.Duration / interval)
	capacity := int(float64(cfg.Duration) / float64(cfg.ServiceTime) * float64(cfg.Slots))

	type pending struct {
		fut    *orb.Future
		sentAt time.Time
		ctx    context.Context
		cancel context.CancelFunc
	}
	queue := make(chan pending, total)
	var (
		mu        sync.Mutex
		latencies []float64
		r         = OverloadResult{Mode: mode, Capacity: capacity}
	)

	// Bounded waiter pool: in governed mode in-flight work is far below
	// Waiters so latencies are exact; in the ungoverned baseline waiters
	// can fall behind the backlog, which only understates its collapse.
	var wg sync.WaitGroup
	for w := 0; w < cfg.Waiters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range queue {
				_, err := p.fut.Wait(p.ctx)
				p.cancel()
				lat := time.Since(p.sentAt)
				mu.Lock()
				switch {
				case err == nil:
					r.Good++
					latencies = append(latencies, lat.Seconds()*1e3)
				case errors.Is(err, orb.ErrOverloaded):
					r.Shed++
				default:
					r.Missed++
					latencies = append(latencies, cfg.Deadline.Seconds()*1e3) // censored
				}
				mu.Unlock()
			}
		}()
	}

	// Goroutine sampler: peak growth over the pre-storm baseline, which
	// already includes the waiter pool and this sampler.
	baseline := runtime.NumGoroutine()
	stopSample := make(chan struct{})
	var sampleWG sync.WaitGroup
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		for {
			select {
			case <-stopSample:
				return
			case <-time.After(5 * time.Millisecond):
				if g := runtime.NumGoroutine() - baseline; g > r.MaxGrowth {
					r.MaxGrowth = g
				}
			}
		}
	}()

	// Open-loop offered load on an absolute schedule.
	start := time.Now()
	for i := 0; i < total; i++ {
		if next := start.Add(time.Duration(i) * interval); time.Until(next) > 0 {
			time.Sleep(time.Until(next))
		}
		sentAt := time.Now()
		ctx, cancel := context.WithDeadline(context.Background(), sentAt.Add(cfg.Deadline))
		fut, err := client.InvokeAsync(ctx, ref, WorkOp)
		r.Offered++
		if err != nil {
			cancel()
			mu.Lock()
			r.SendErrs++
			mu.Unlock()
			continue
		}
		queue <- pending{fut: fut, sentAt: sentAt, ctx: ctx, cancel: cancel}
	}
	close(queue)
	wg.Wait()
	close(stopSample)
	sampleWG.Wait()

	r.Goodput = float64(r.Good) / float64(capacity)
	r.P50Ms = Percentile(latencies, 50)
	r.P99Ms = Percentile(latencies, 99)
	r.Stats = srv.Stats()
	return r, nil
}

// HostileQuarantine measures how many adaptation events a hostile shipped
// script survives before the budget quarantine evicts it: a monitor aspect
// that loops forever is installed next to a healthy one, and the monitor
// is ticked until the offender is gone. Returns the tick count at
// eviction (the quarantine latency in events).
func HostileQuarantine(maxSteps int) (int, error) {
	m, err := monitor.New(monitor.Options{Name: "E15", MaxScriptSteps: maxSteps})
	if err != nil {
		return 0, err
	}
	defer m.Close()
	if err := m.DefineAspect("hostile", `function(self, v, mon) while true do end end`); err != nil {
		return 0, err
	}
	if err := m.DefineAspect("healthy", monitor.IncreasingAspectSrc); err != nil {
		return 0, err
	}
	if err := m.SetValue(wire.TableVal(wire.NewList(
		wire.Number(1), wire.Number(2), wire.Number(3)))); err != nil {
		return 0, err
	}
	for ticks := 1; ; ticks++ {
		if err := m.Tick(); err != nil {
			return 0, err
		}
		if m.AspectCount() == 1 {
			return ticks, nil
		}
		if ticks > 100 {
			return 0, errors.New("experiment: hostile aspect never quarantined")
		}
	}
}
