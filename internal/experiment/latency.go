package experiment

import (
	"context"
	"fmt"
	"time"

	"autoadapt/internal/hostenv"
	"autoadapt/internal/metrics"
	"autoadapt/internal/monitor"
	"autoadapt/internal/trading"
	"autoadapt/internal/wire"
)

// Experiment E16 — SLO-driven selection: latency-aware vs load-average
// routing under a bursty workload with a latency fault.
//
// Each server feeds its request outcomes into a metrics.SLOFeed whose
// windowed percentiles an SLO monitor publishes as the trader dynamic
// property p99_ms (internal/monitor/slo.go). Clients then select servers
// two ways:
//
//	loadavg — the paper's signal: preference "min LoadAvg" over the
//	          kernel-style damped 1-minute load average.
//	p99     — the metrics-core feedback loop: constraint "p99_ms < L"
//	          plus preference "min p99_ms" over the last window's p99.
//
// Mid-run one server suffers a latency fault that leaves its CPU load
// untouched — an IO stall, lock contention, a slow dependency. The load
// average is structurally blind to it (load measures run-queue depth, not
// service time) and damped besides, so "min LoadAvg" keeps routing to the
// slow server; the windowed p99 moves one monitor period after the fault
// and routes around it. When the fault clears, the SLOFeed's decay-on-
// empty (each empty window halves the remembered sample) lets the
// excluded server fall back under the constraint and win probe traffic
// again — no operator reset required.

// E16 policy names.
const (
	PolicyLoadAvgRoute = "loadavg"
	PolicyP99Route     = "p99"
)

// SLORouteConfig sizes experiment E16.
type SLORouteConfig struct {
	Servers  int           // default 3
	Duration time.Duration // simulated run length (default 120s)
	Step     time.Duration // driver step = SLO monitor period (default 1s)
	// The latency fault: FaultServer's service time becomes FaultLatency
	// (instead of BaseLatency) between FaultAt and FaultOff.
	FaultServer  int
	FaultAt      time.Duration // default 30s
	FaultOff     time.Duration // default 90s
	BaseLatency  time.Duration // healthy service time (default 5ms)
	FaultLatency time.Duration // faulty service time (default 80ms)
	// P99Limit is the constraint bound in ms for the p99 policy
	// ("p99_ms < P99Limit"); default 50.
	P99Limit float64
	// Demand is the per-request CPU demand accounted on the simulated
	// host — what the load average can see (default 10ms).
	Demand time.Duration
	// Bursty open-loop arrivals: BurstLow requests per step for the first
	// half of each BurstPeriod steps, BurstHigh for the second half
	// (defaults 12, 48, 10).
	BurstLow, BurstHigh int
	BurstPeriod         int
}

func (c *SLORouteConfig) fillDefaults() {
	if c.Servers == 0 {
		c.Servers = 3
	}
	if c.Duration == 0 {
		c.Duration = 120 * time.Second
	}
	if c.Step == 0 {
		c.Step = time.Second
	}
	if c.FaultAt == 0 {
		c.FaultAt = 30 * time.Second
	}
	if c.FaultOff == 0 {
		c.FaultOff = 90 * time.Second
	}
	if c.BaseLatency == 0 {
		c.BaseLatency = 5 * time.Millisecond
	}
	if c.FaultLatency == 0 {
		c.FaultLatency = 80 * time.Millisecond
	}
	if c.P99Limit == 0 {
		c.P99Limit = 50
	}
	if c.Demand == 0 {
		c.Demand = 10 * time.Millisecond
	}
	if c.BurstLow == 0 {
		c.BurstLow = 12
	}
	if c.BurstHigh == 0 {
		c.BurstHigh = 48
	}
	if c.BurstPeriod == 0 {
		c.BurstPeriod = 10
	}
}

// SLORouteResult summarizes one policy's E16 run.
type SLORouteResult struct {
	Policy   string
	Requests int64
	// Client-observed latency, overall and during the fault window (a
	// two-step grace after FaultAt lets the first SLO window close).
	P50Ms, P99Ms           float64
	FaultP50Ms, FaultP99Ms float64
	// FaultShareFaulty is the fraction of fault-window requests routed to
	// the faulty server.
	FaultShareFaulty float64
	// RecoveryFaulty counts requests the faulty server won back after the
	// fault cleared and the decayed p99 re-admitted it.
	RecoveryFaulty int64
	PerServer      []int64
}

// monitorResolver resolves trader dynamic properties directly against
// in-process monitors — E16 needs no wire hops, only the selection logic.
type monitorResolver map[string]*monitor.Monitor

func (r monitorResolver) ResolveDynamic(_ context.Context, ref wire.ObjRef, aspect string) (wire.Value, error) {
	m, ok := r[ref.Endpoint+"/"+ref.Key]
	if !ok {
		return wire.Nil(), fmt.Errorf("experiment: no monitor at %s", ref)
	}
	return m.AspectValue(aspect)
}

// SLORouting runs E16 for one policy and returns its result row.
func SLORouting(cfg SLORouteConfig, policy string) (*SLORouteResult, error) {
	cfg.fillDefaults()
	var constraint, preference string
	switch policy {
	case PolicyLoadAvgRoute:
		constraint, preference = "", "min LoadAvg"
	case PolicyP99Route:
		constraint = fmt.Sprintf("p99_ms < %g", cfg.P99Limit)
		preference = "min p99_ms"
	default:
		return nil, fmt.Errorf("experiment: unknown E16 policy %q", policy)
	}

	resolver := monitorResolver{}
	tr := trading.NewTrader(resolver)
	tr.AddType(trading.ServiceType{Name: ServiceTypeName, Interface: "Service",
		Props: []string{"LoadAvg", "p99_ms", "slo_n", "Host"}})

	hosts := make([]*hostenv.Host, cfg.Servers)
	sloMons := make([]*monitor.Monitor, cfg.Servers)
	loadMons := make([]*monitor.Monitor, cfg.Servers)
	feeds := make([]*metrics.SLOFeed, cfg.Servers)
	refByEndpoint := make(map[string]int, cfg.Servers)
	defer func() {
		for _, m := range sloMons {
			if m != nil {
				m.Close()
			}
		}
		for _, m := range loadMons {
			if m != nil {
				m.Close()
			}
		}
		for _, h := range hosts {
			if h != nil {
				h.Close()
			}
		}
	}()
	for i := 0; i < cfg.Servers; i++ {
		host := hostenv.New(hostenv.Options{Name: fmt.Sprintf("host-%d", i)})
		hosts[i] = host
		lm, err := monitor.New(monitor.Options{
			Name: "LoadAvg",
			Update: func() (wire.Value, error) {
				one, five, fifteen, err := host.LoadAvg()
				if err != nil {
					return wire.Nil(), err
				}
				return wire.TableVal(wire.NewList(
					wire.Number(one), wire.Number(five), wire.Number(fifteen))), nil
			},
		})
		if err != nil {
			return nil, err
		}
		loadMons[i] = lm
		if err := lm.DefineAspect(monitor.Load1Aspect, monitor.Load1AspectSrc); err != nil {
			return nil, err
		}
		feeds[i] = metrics.NewSLOFeed(nil, fmt.Sprintf("srv%d", i))
		sm, err := monitor.NewSLO(feeds[i], nil, 0, nil)
		if err != nil {
			return nil, err
		}
		// The window's sample count, so clients can tell a measured p99
		// from a decayed ghost of one (see pick below).
		if err := sm.DefineAspect("n", "function(self, currval, monitor)\n\treturn currval.count\nend"); err != nil {
			return nil, err
		}
		sloMons[i] = sm

		ep := fmt.Sprintf("sim|host-%d", i)
		loadRef := wire.ObjRef{Endpoint: ep, Key: "monitor/LoadAvg"}
		sloRef := wire.ObjRef{Endpoint: ep, Key: "monitor/SLO"}
		svcRef := wire.ObjRef{Endpoint: ep, Key: "service"}
		resolver[loadRef.Endpoint+"/"+loadRef.Key] = lm
		resolver[sloRef.Endpoint+"/"+sloRef.Key] = sm
		refByEndpoint[svcRef.Endpoint] = i

		if _, err := tr.Export(ServiceTypeName, svcRef, map[string]trading.PropValue{
			"LoadAvg": {Dynamic: loadRef, Aspect: monitor.Load1Aspect},
			"p99_ms":  {Dynamic: sloRef, Aspect: monitor.P99Aspect},
			"slo_n":   {Dynamic: sloRef, Aspect: "n"},
			"Host":    {Static: wire.String(host.Name())},
		}); err != nil {
			return nil, err
		}
	}

	tick := func() error {
		for i := range loadMons {
			if err := loadMons[i].Tick(); err != nil {
				return err
			}
			if err := sloMons[i].Tick(); err != nil {
				return err
			}
		}
		return nil
	}
	// Prime so every dynamic property resolves before the first query.
	if err := tick(); err != nil {
		return nil, err
	}

	ctx := context.Background()
	res := &SLORouteResult{Policy: policy, PerServer: make([]int64, cfg.Servers)}
	var all, fault []float64
	var faultTotal, faultFaulty int64
	grace := 2 * cfg.Step
	// Deterministic LCG for jitter and band selection.
	rng := uint32(12345)
	next := func() uint32 {
		rng = rng*1664525 + 1013904223
		return rng >> 16
	}
	// Multiplicative latency jitter in [0.85, 1.15).
	jitter := func() float64 { return 0.85 + 0.3*float64(next()&1023)/1024 }
	// pick spreads load among the preference-sorted offers whose ranked
	// value sits within a tolerance band of the best (v <= 2*best + eps):
	// strict argmin routing would herd every request of a step onto one
	// server — in particular onto a re-admitted server whose decayed p99
	// briefly undercuts the healthy ones — where real clients jitter
	// across comparable choices. A p99 based on zero samples (slo_n == 0:
	// the feed's decay of an abandoned server, not a measurement) is only
	// *probed* — at most one request per step — until it earns a real
	// window again.
	rankProp := "LoadAvg"
	if policy == PolicyP99Route {
		rankProp = "p99_ms"
	}
	probed := make([]bool, cfg.Servers)
	pick := func(qrs []trading.QueryResult) trading.QueryResult {
		best, _ := qrs[0].Snapshot[rankProp].AsNumber()
		var pool, ghosts []trading.QueryResult
		for _, qr := range qrs {
			v, ok := qr.Snapshot[rankProp].AsNumber()
			if !ok || v > 2*best+2 {
				break // sorted: everything after is worse
			}
			cnt, _ := qr.Snapshot["slo_n"].AsNumber()
			i := refByEndpoint[qr.Offer.Ref.Endpoint]
			if policy == PolicyP99Route && cnt == 0 {
				if !probed[i] {
					ghosts = append(ghosts, qr)
				}
				continue
			}
			pool = append(pool, qr)
		}
		pool = append(pool, ghosts...)
		if len(pool) == 0 {
			pool = qrs[:1] // every candidate probed already: take the best
		}
		qr := pool[int(next())%len(pool)]
		i := refByEndpoint[qr.Offer.Ref.Endpoint]
		if cnt, _ := qr.Snapshot["slo_n"].AsNumber(); cnt == 0 {
			probed[i] = true
		}
		return qr
	}

	steps := int(cfg.Duration / cfg.Step)
	for s := 0; s < steps; s++ {
		now := time.Duration(s) * cfg.Step
		faultOn := now >= cfg.FaultAt && now < cfg.FaultOff
		for i := range probed {
			probed[i] = false
		}
		n := cfg.BurstLow
		if s%cfg.BurstPeriod >= cfg.BurstPeriod/2 {
			n = cfg.BurstHigh
		}
		for r := 0; r < n; r++ {
			qrs, err := tr.Query(ctx, ServiceTypeName, constraint, preference, 0)
			if err != nil {
				return nil, fmt.Errorf("query at %v: %w", now, err)
			}
			if len(qrs) == 0 {
				// Every server over the SLO bound: degrade gracefully to
				// unconstrained latency ranking rather than failing.
				qrs, err = tr.Query(ctx, ServiceTypeName, "", preference, 0)
				if err != nil || len(qrs) == 0 {
					return nil, fmt.Errorf("fallback query at %v matched nothing: %v", now, err)
				}
			}
			i := refByEndpoint[pick(qrs).Offer.Ref.Endpoint]
			res.PerServer[i]++
			res.Requests++

			lat := cfg.BaseLatency
			if faultOn && i == cfg.FaultServer {
				lat = cfg.FaultLatency
			}
			latMs := float64(lat) / float64(time.Millisecond) * jitter()
			feeds[i].ObserveLatency(int64(latMs*1000), false)
			hosts[i].RecordWork(cfg.Demand)

			all = append(all, latMs)
			if now >= cfg.FaultAt+grace && now < cfg.FaultOff {
				fault = append(fault, latMs)
				faultTotal++
				if i == cfg.FaultServer {
					faultFaulty++
				}
			}
			if now >= cfg.FaultOff+grace && i == cfg.FaultServer {
				res.RecoveryFaulty++
			}
		}
		for _, h := range hosts {
			h.SampleWindow(cfg.Step)
		}
		if err := tick(); err != nil {
			return nil, err
		}
	}

	res.P50Ms = Percentile(all, 50)
	res.P99Ms = Percentile(all, 99)
	res.FaultP50Ms = Percentile(fault, 50)
	res.FaultP99Ms = Percentile(fault, 99)
	if faultTotal > 0 {
		res.FaultShareFaulty = float64(faultFaulty) / float64(faultTotal)
	}
	return res, nil
}

// SLORoutingTable runs E16 for both policies and renders the comparison.
func SLORoutingTable(cfg SLORouteConfig) (*Table, []*SLORouteResult, error) {
	t := NewTable(
		"E16 — SLO-driven selection: windowed p99 vs damped load average under a latency fault",
		"policy", "requests", "p50", "p99", "fault p50", "fault p99", "fault share->faulty", "readmitted")
	var results []*SLORouteResult
	for _, p := range []string{PolicyP99Route, PolicyLoadAvgRoute} {
		r, err := SLORouting(cfg, p)
		if err != nil {
			return nil, nil, fmt.Errorf("policy %s: %w", p, err)
		}
		results = append(results, r)
		t.AddRow(r.Policy, I(r.Requests), F(r.P50Ms), F(r.P99Ms),
			F(r.FaultP50Ms), F(r.FaultP99Ms), F(r.FaultShareFaulty), I(r.RecoveryFaulty))
	}
	return t, results, nil
}
