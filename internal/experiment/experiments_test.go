package experiment

import (
	"testing"
	"time"
)

func TestEventVsPollingShape(t *testing.T) {
	cfg := EventVsPollingConfig{
		Duration:   20 * time.Minute,
		TickPeriod: 10 * time.Second,
		Threshold:  50,
		PollEvery:  []time.Duration{5 * time.Second, time.Minute},
	}
	rs, err := EventVsPolling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]EventVsPollingResult{}
	for _, r := range rs {
		byMode[r.Mode] = r
	}
	ev, push := byMode["event"], byMode["push"]
	fast, slow := byMode["poll-5s"], byMode["poll-1m0s"]

	t.Logf("event=%+v push=%+v fast=%+v slow=%+v", ev, push, fast, slow)

	// The paper's claim (§III): moving event detection to the monitor
	// reduces interactions. The event mode must beat value-pushing (A3)
	// and fast polling.
	if !(ev.Interactions < push.Interactions) {
		t.Errorf("event interactions %d !< push %d", ev.Interactions, push.Interactions)
	}
	if !(ev.Interactions < fast.Interactions) {
		t.Errorf("event interactions %d !< poll-5s %d", ev.Interactions, fast.Interactions)
	}
	// Event mode detects every condition tick with zero latency.
	if ev.Detections != ev.TrueTicks {
		t.Errorf("event detections %d != condition ticks %d", ev.Detections, ev.TrueTicks)
	}
	if ev.MeanLatencySec != 0 {
		t.Errorf("event latency = %v, want 0", ev.MeanLatencySec)
	}
	// Slow polling misses detections and adds latency (the crossover the
	// paper implies: polling must be as fast as the update period to match
	// event mode, at which point it costs strictly more messages).
	if !(slow.Detections < ev.Detections) {
		t.Errorf("slow polling detections %d !< event %d", slow.Detections, ev.Detections)
	}
	if !(slow.MeanLatencySec > 0) {
		t.Errorf("slow polling latency = %v, want > 0", slow.MeanLatencySec)
	}
	// And the table renders.
	table, _, err := EventVsPollingTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", table.Render())
}

func TestPostponedVsImmediateShape(t *testing.T) {
	cfg := PostponeConfig{Events: 15}
	rs, err := PostponedVsImmediate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]PostponeResult{}
	for _, r := range rs {
		byMode[r.Mode] = r
	}
	post, imm := byMode["postponed"], byMode["immediate"]
	t.Logf("postponed=%+v immediate=%+v", post, imm)

	// The design claim (§IV-A): postponement avoids reconfigurations that
	// overlap in-flight traffic.
	if post.OverlappedReconfigs != 0 {
		t.Errorf("postponed mode overlapped %d reconfigs, want 0", post.OverlappedReconfigs)
	}
	if imm.OverlappedReconfigs == 0 {
		t.Errorf("immediate mode overlapped 0 reconfigs, expected some")
	}
	if post.StrategyRuns == 0 || imm.StrategyRuns == 0 {
		t.Errorf("strategies did not run: %d/%d", post.StrategyRuns, imm.StrategyRuns)
	}
	table, _, err := PostponeTable(PostponeConfig{Events: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", table.Render())
}

func TestRelaxedRequeryShape(t *testing.T) {
	cfg := RelaxConfig{Servers: 3, OverloadTicks: 6, ReliefTicks: 6, Threshold: 3}
	rs, err := RelaxedRequery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]RelaxResult{}
	for _, r := range rs {
		byName[r.Strategy] = r
	}
	strict, relax := byName["strict"], byName["relax"]
	t.Logf("strict=%+v relax=%+v", strict, relax)

	// Strict keeps paying queries during the overload; Fig. 7's relaxation
	// silences the watch after the first failure.
	if !(relax.QueriesOverload < strict.QueriesOverload) {
		t.Errorf("relax queries %d !< strict %d during overload",
			relax.QueriesOverload, strict.QueriesOverload)
	}
	// Strict recovers promptly once a server frees; relax stays put (its
	// relaxed watch no longer fires).
	if strict.RecoveredAtTick < 0 {
		t.Error("strict strategy never recovered after relief")
	}
	if relax.RecoveredAtTick >= 0 {
		t.Errorf("relax strategy recovered at tick %d; expected to stay (that is its trade-off)",
			relax.RecoveredAtTick)
	}
	table, _, err := RelaxTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", table.Render())
}

func TestMetrics(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if Mean(nil) != 0 || Percentile(nil, 50) != 0 {
		t.Fatal("empty input should yield 0")
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 4 {
		t.Fatalf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 2.5 {
		t.Fatalf("P50 = %v", got)
	}
	if got := MaxOverMean(xs); got != 4/2.5 {
		t.Fatalf("MaxOverMean = %v", got)
	}
	if got := CoV([]float64{5, 5, 5}); got != 0 {
		t.Fatalf("CoV(uniform) = %v", got)
	}
	if CoV(nil) != 0 || MaxOverMean(nil) != 0 {
		t.Fatal("empty CoV/MaxOverMean should be 0")
	}
	if got := StdDev([]float64{2, 4}); got != 1 {
		t.Fatalf("StdDev = %v", got)
	}
	ds := Seconds([]time.Duration{time.Second, 2 * time.Second})
	if ds[1] != 2 {
		t.Fatalf("Seconds = %v", ds)
	}
	is := Int64s([]int64{3})
	if is[0] != 3 {
		t.Fatalf("Int64s = %v", is)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "a", "bb")
	tb.AddRow("x")
	tb.AddRow("longer", "y", "dropped")
	out := tb.Render()
	if out == "" || len(tb.Rows()) != 2 {
		t.Fatalf("render/rows broken: %q", out)
	}
	if tb.Rows()[1][1] != "y" {
		t.Fatalf("rows = %v", tb.Rows())
	}
	if F(1.23456) != "1.235" || Ms(0.0015) != "1.5ms" || I(7) != "7" {
		t.Fatal("format helpers wrong")
	}
}

func TestStalenessShape(t *testing.T) {
	cfg := StalenessConfig{Duration: 6 * time.Minute}
	rs, err := Staleness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]StalenessResult{}
	for _, r := range rs {
		byMode[r.Mode] = r
	}
	dyn := byMode["dynamic"]
	slow := byMode["snapshot-1m0s"]
	t.Logf("dynamic=%+v slow=%+v", dyn, slow)

	// Dynamic properties never misselect: every query sees true loads.
	if dyn.Misselections != 0 || dyn.EmptyResults != 0 {
		t.Errorf("dynamic mode misselected: %+v", dyn)
	}
	// Stale snapshots misselect and also return false empties.
	if slow.Misselections == 0 {
		t.Errorf("slow snapshots never misselected: %+v", slow)
	}
	table, _, err := StalenessTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", table.Render())
}
