package experiment

import (
	"context"
	"fmt"
	"time"

	"autoadapt/internal/baseline"
	"autoadapt/internal/core"
	"autoadapt/internal/monitor"
	"autoadapt/internal/rebind"
	"autoadapt/internal/wire"
)

// Experiment E1 — the paper's §V load-sharing example, quantified.
//
// K closed-loop clients share N stateless servers. The *adaptive* policy is
// the paper's smart proxy: constraint-filtered trader selection, a shipped
// LoadIncrease predicate evaluated at each server's monitor, postponed
// event handling, and a re-selection strategy. The *static* policy is the
// Badidi et al. [20] baseline the paper contrasts itself against: one
// trader query at bind time, then no further adaptation. Round-robin and
// random are load-oblivious controls.
//
// Time is discrete: every Step the driver runs due client requests
// (accounted on simulated hosts with windowed load-average updates), and
// every MonitorPeriod it ticks the monitors, which fire shipped predicates
// and deliver notifications synchronously. Mid-run, background load is
// injected on the most-loaded host, reproducing the disturbance that makes
// one-shot selection "become unbalanced".

// Policy names accepted by LoadSharing.
const (
	PolicyAdaptive   = "adaptive"
	PolicyStatic     = "static"
	PolicyRoundRobin = "roundrobin"
	PolicyRandom     = "random"
	PolicyRebind     = "rebind"
)

// AllPolicies lists every selection policy in report order. rebind is
// static selection plus failure-driven rebinding (package rebind): under
// E1's fault-free load it behaves like static, and E11 exercises its
// self-healing path.
var AllPolicies = []string{PolicyAdaptive, PolicyStatic, PolicyRebind, PolicyRoundRobin, PolicyRandom}

// LoadShareConfig parameterizes experiment E1.
type LoadShareConfig struct {
	Servers       int
	Clients       int
	Duration      time.Duration // simulated run length
	Step          time.Duration // accounting window (default 5s)
	MonitorPeriod time.Duration // monitor tick interval (default 60s)
	Think         time.Duration // client think time (default 2s)
	Demand        time.Duration // base request CPU demand (default 500ms)
	Threshold     float64       // LoadAvg limit in constraints (default 3)
	// Background injects external load: at BackgroundAt, BackgroundLoad
	// runnable tasks appear on the host currently serving the most
	// clients, and disappear at BackgroundOff (0 = never).
	BackgroundLoad float64
	BackgroundAt   time.Duration
	BackgroundOff  time.Duration
}

func (c *LoadShareConfig) fillDefaults() {
	if c.Servers == 0 {
		c.Servers = 4
	}
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.Duration == 0 {
		c.Duration = 20 * time.Minute
	}
	if c.Step == 0 {
		c.Step = 5 * time.Second
	}
	if c.MonitorPeriod == 0 {
		c.MonitorPeriod = time.Minute
	}
	if c.Think == 0 {
		c.Think = 2 * time.Second
	}
	if c.Demand == 0 {
		c.Demand = 500 * time.Millisecond
	}
	if c.Threshold == 0 {
		c.Threshold = 3
	}
}

// LoadShareResult summarizes one policy's run.
type LoadShareResult struct {
	Policy        string
	Requests      int64
	MeanRespSec   float64
	P95RespSec    float64
	ImbalanceCoV  float64 // CoV of per-server busy time
	MaxOverMean   float64 // max/mean of per-server busy time
	Switches      int64   // server changes across all clients
	TraderQueries int64
	PerServer     []int64 // served requests per server
}

// LoadSharing runs E1 for one policy and returns its result row.
func LoadSharing(cfg LoadShareConfig, policy string) (*LoadShareResult, error) {
	cfg.fillDefaults()
	w, err := NewWorld(WorldConfig{Servers: cfg.Servers, SyncNotify: true})
	if err != nil {
		return nil, err
	}
	defer w.Close()
	ctx := context.Background()
	// Prime monitors so offers have live property values before binding.
	if err := w.TickMonitors(); err != nil {
		return nil, err
	}

	constraint := fmt.Sprintf("LoadAvg < %g and LoadAvgIncreasing == no", cfg.Threshold)

	// Build one invoker per client.
	invokers := make([]baseline.Invoker, cfg.Clients)
	var proxies []*core.SmartProxy
	var rebinders []*rebind.Rebinder
	for i := 0; i < cfg.Clients; i++ {
		switch policy {
		case PolicyAdaptive:
			sp, err := core.New(core.Options{
				Client:           w.Client,
				Lookup:           w.Lookup,
				ServiceType:      ServiceTypeName,
				Constraint:       constraint,
				Preference:       "min LoadAvg",
				FallbackSortOnly: true,
				ObserverServer:   w.ObsSrv,
				Watches: []core.Watch{{
					Prop:      "LoadAvg",
					Event:     monitor.LoadIncreaseEvent,
					Predicate: monitor.LoadIncreasePredicateSrc(cfg.Threshold),
				}},
			})
			if err != nil {
				return nil, err
			}
			sp.SetStrategy(monitor.LoadIncreaseEvent, func(ctx context.Context, p *core.SmartProxy) error {
				_, err := p.Select(ctx, constraint)
				return err
			})
			defer sp.Close()
			if err := sp.Bind(ctx); err != nil {
				return nil, fmt.Errorf("bind adaptive client %d: %w", i, err)
			}
			proxies = append(proxies, sp)
			invokers[i] = sp
		case PolicyStatic:
			c := baseline.NewStatic(w.Client, w.Lookup, ServiceTypeName, "min LoadAvg")
			if err := c.Bind(ctx); err != nil {
				return nil, err
			}
			invokers[i] = c
		case PolicyRebind:
			c := baseline.NewRebinding(w.Client, w.Lookup, ServiceTypeName, "", "min LoadAvg")
			if err := c.Bind(ctx); err != nil {
				return nil, err
			}
			rebinders = append(rebinders, c)
			invokers[i] = c
		case PolicyRoundRobin:
			c := baseline.NewRoundRobin(w.Client, w.Lookup, ServiceTypeName)
			if err := c.Bind(ctx); err != nil {
				return nil, err
			}
			invokers[i] = c
		case PolicyRandom:
			c := baseline.NewRandom(w.Client, w.Lookup, ServiceTypeName, int64(i)+1)
			if err := c.Bind(ctx); err != nil {
				return nil, err
			}
			invokers[i] = c
		default:
			return nil, fmt.Errorf("experiment: unknown policy %q", policy)
		}
	}

	// Closed-loop simulation.
	nextAt := make([]time.Duration, cfg.Clients)
	for i := range nextAt {
		// Stagger starts across one think time so arrivals interleave.
		nextAt[i] = time.Duration(i) * cfg.Think / time.Duration(cfg.Clients)
	}
	var responses []float64
	var requests int64
	demandSec := cfg.Demand.Seconds()
	bgOn := false

	for now := time.Duration(0); now < cfg.Duration; now += cfg.Step {
		// Background disturbance.
		if cfg.BackgroundLoad > 0 && !bgOn && now >= cfg.BackgroundAt {
			w.Hosts[busiestHost(w)].SetBackground(cfg.BackgroundLoad)
			bgOn = true
		}
		if bgOn && cfg.BackgroundOff > 0 && now >= cfg.BackgroundOff {
			for _, h := range w.Hosts {
				h.SetBackground(0)
			}
			bgOn = false
		}
		// Run due client requests within this step.
		for i := range invokers {
			for nextAt[i] <= now {
				rs, err := invokers[i].Invoke(ctx, WorkOp, wire.Number(demandSec))
				if err != nil {
					return nil, fmt.Errorf("client %d at %v: %w", i, now, err)
				}
				resp := rs[0].Num()
				responses = append(responses, resp)
				requests++
				nextAt[i] += cfg.Think + time.Duration(resp*float64(time.Second))
			}
		}
		// Close the accounting window.
		w.SampleHosts(cfg.Step)
		// Monitor ticks on their period (synchronous notification).
		if now%cfg.MonitorPeriod == 0 && now > 0 {
			if err := w.TickMonitors(); err != nil {
				return nil, err
			}
		}
	}

	res := &LoadShareResult{
		Policy:       policy,
		Requests:     requests,
		MeanRespSec:  Mean(responses),
		P95RespSec:   Percentile(responses, 95),
		ImbalanceCoV: CoV(w.BusySeconds()),
		MaxOverMean:  MaxOverMean(w.BusySeconds()),
		PerServer:    w.ServedCounts(),
	}
	if policy == PolicyAdaptive {
		for _, sp := range proxies {
			st := sp.Stats()
			res.Switches += st.Switches
			res.TraderQueries += st.Selections
		}
	} else if policy == PolicyRebind {
		for _, rb := range rebinders {
			st := rb.Stats()
			res.Switches += st.Rebinds
			res.TraderQueries += st.Queries
		}
	} else {
		// Every baseline performs exactly one trader query at bind time.
		res.TraderQueries = int64(cfg.Clients)
	}
	return res, nil
}

// busiestHost returns the index of the host with the most completed work.
func busiestHost(w *World) int {
	busy := w.BusySeconds()
	best := 0
	for i, b := range busy {
		if b > busy[best] {
			best = i
		}
	}
	return best
}

// LoadSharingTable runs E1 for every policy and renders the comparison.
func LoadSharingTable(cfg LoadShareConfig) (*Table, []*LoadShareResult, error) {
	t := NewTable(
		"E1 — Load sharing: adaptive smart proxy vs one-shot trader selection (paper §V)",
		"policy", "requests", "mean resp", "p95 resp", "imbalance CoV", "max/mean", "switches", "queries")
	var results []*LoadShareResult
	for _, p := range AllPolicies {
		r, err := LoadSharing(cfg, p)
		if err != nil {
			return nil, nil, fmt.Errorf("policy %s: %w", p, err)
		}
		results = append(results, r)
		t.AddRow(r.Policy, I(r.Requests), Ms(r.MeanRespSec), Ms(r.P95RespSec),
			F(r.ImbalanceCoV), F(r.MaxOverMean), I(r.Switches), I(r.TraderQueries))
	}
	return t, results, nil
}
