package experiment

import (
	"context"
	"fmt"
	"sync"
	"time"

	"autoadapt/internal/monitor"
	"autoadapt/internal/orb"
	"autoadapt/internal/wire"
)

// Experiment E2 — event-driven monitoring vs polling (paper §III), plus
// ablation A3 (predicate evaluated at the monitor vs values shipped to the
// observer and evaluated locally).
//
// One monitor observes a property following a deterministic trajectory.
// The application cares about one condition: value above a threshold while
// rising. Three mechanisms detect it:
//
//   - event:   the paper's design — the predicate is shipped to the monitor
//     and evaluated there; only firings cross the network.
//   - push:    the monitor ships every new value to the observer, which
//     evaluates the predicate locally (A3).
//   - poll-P:  the observer polls getValue+getAspectValue every P.
//
// Metrics: client↔monitor interactions (messages), detections, and mean
// detection latency relative to the tick where the condition became true.

// EventVsPollingConfig parameterizes E2.
type EventVsPollingConfig struct {
	Duration   time.Duration   // simulated run (default 30min)
	TickPeriod time.Duration   // monitor update period (default 10s)
	Threshold  float64         // condition threshold (default 50)
	PollEvery  []time.Duration // polling periods to compare (default 5s, 30s, 60s)
}

func (c *EventVsPollingConfig) fillDefaults() {
	if c.Duration == 0 {
		c.Duration = 30 * time.Minute
	}
	if c.TickPeriod == 0 {
		c.TickPeriod = 10 * time.Second
	}
	if c.Threshold == 0 {
		c.Threshold = 50
	}
	if len(c.PollEvery) == 0 {
		c.PollEvery = []time.Duration{5 * time.Second, 30 * time.Second, time.Minute}
	}
}

// EventVsPollingResult is one mechanism's row.
type EventVsPollingResult struct {
	Mode           string
	Interactions   int64
	Detections     int64
	TrueTicks      int64 // ticks where the condition actually held
	MeanLatencySec float64
}

// trajectory is the property value at simulated time t: a sawtooth that
// spends roughly a third of its period above 50 and rising.
func trajectory(t time.Duration) float64 {
	period := 5 * time.Minute
	phase := float64(t%period) / float64(period) // 0..1
	return phase * 90                            // rises 0→90, then resets
}

// EventVsPolling runs E2 and returns one row per mechanism.
func EventVsPolling(cfg EventVsPollingConfig) ([]EventVsPollingResult, error) {
	cfg.fillDefaults()
	var results []EventVsPollingResult

	run := func(mode string, poll time.Duration) (EventVsPollingResult, error) {
		res := EventVsPollingResult{Mode: mode}
		net := orb.NewInprocNetwork()

		// Counting client: every Invoke/oneway through it is an interaction.
		var interactions int64
		var mu sync.Mutex
		countingClient := orb.NewClient(net)
		defer countingClient.Close()

		notifyClient := orb.NewClient(net)
		defer notifyClient.Close()

		obsSrv, err := orb.NewServer(orb.ServerOptions{Network: net, Address: "observer-host"})
		if err != nil {
			return res, err
		}
		defer obsSrv.Close()

		var detections int64
		var latencies []float64
		var lastBecameTrue time.Duration = -1
		now := time.Duration(0)
		condTrueAtLastTick := false

		recordDetection := func() {
			mu.Lock()
			defer mu.Unlock()
			detections++
			if lastBecameTrue >= 0 {
				latencies = append(latencies, (now - lastBecameTrue).Seconds())
				lastBecameTrue = -1 // latency measured once per rising edge
			}
		}

		var localPredicateTrue func(v float64, prev float64) bool
		threshold := cfg.Threshold
		localPredicateTrue = func(v, prev float64) bool { return v > threshold && v > prev }

		// Monitor with synchronous notification so counts are exact.
		m, err := monitor.New(monitor.Options{
			Name: "Prop",
			Notifier: monitor.NotifierFunc(func(ref wire.ObjRef, eventID string) error {
				mu.Lock()
				interactions++ // one oneway message monitor→observer
				mu.Unlock()
				if eventID == "Crossed" {
					recordDetection()
				}
				return nil
			}),
		})
		if err != nil {
			return res, err
		}
		defer m.Close()
		if err := m.DefineAspect("Increasing", `function(self, v, mon)
			local prev = self.prev
			self.prev = v
			if prev ~= nil and v > prev then return "yes" end
			return "no"
		end`); err != nil {
			return res, err
		}

		monHost, err := orb.NewServer(orb.ServerOptions{Network: net, Address: "monitor-host"})
		if err != nil {
			return res, err
		}
		defer monHost.Close()
		monRef := monHost.Register("monitor", "", monitor.NewServant(m))

		obsRef := obsSrv.Register("observer", "", orb.ServantFunc(func(op string, args []wire.Value) ([]wire.Value, error) {
			return nil, nil
		}))

		switch mode {
		case "event":
			pred := fmt.Sprintf(`function(observer, value, monitor)
				return value > %g and monitor:getAspectValue("Increasing") == "yes"
			end`, cfg.Threshold)
			if _, err := m.AttachObserver(obsRef, "Crossed", pred); err != nil {
				return res, err
			}
			mu.Lock()
			interactions++ // the attach round trip
			mu.Unlock()
		case "push":
			// A3: ship every value; observer evaluates locally.
			if _, err := m.AttachObserver(obsRef, "ValueUpdate", "function() return true end"); err != nil {
				return res, err
			}
			mu.Lock()
			interactions++
			mu.Unlock()
		}

		prevVal := 0.0
		nextPoll := time.Duration(0)
		prevPolled := 0.0
		pushPrev := 0.0

		for now = 0; now < cfg.Duration; now += cfg.TickPeriod {
			v := trajectory(now)
			condNow := localPredicateTrue(v, prevVal)
			if condNow && !condTrueAtLastTick {
				mu.Lock()
				lastBecameTrue = now
				mu.Unlock()
			}
			if condNow {
				res.TrueTicks++
			}
			condTrueAtLastTick = condNow

			if err := m.SetValue(wire.Number(v)); err != nil {
				return res, err
			}
			if mode == "push" {
				// The pushed notification was counted by the notifier; the
				// observer evaluates locally against its previous value.
				if err := m.Tick(); err != nil {
					return res, err
				}
				if localPredicateTrue(v, pushPrev) {
					recordDetection()
				}
				pushPrev = v
			} else {
				if err := m.Tick(); err != nil {
					return res, err
				}
			}

			if mode != "event" && mode != "push" {
				// Polling: one getValue round trip per poll; the poller
				// compares consecutive samples locally to detect "rising".
				for nextPoll <= now {
					mu.Lock()
					interactions++
					mu.Unlock()
					rs, err := countingClient.Invoke(context.Background(), monRef, "getValue")
					if err != nil {
						return res, err
					}
					got := rs[0].Num()
					if localPredicateTrue(got, prevPolled) {
						recordDetection()
					}
					prevPolled = got
					nextPoll += poll
				}
			}
			prevVal = v
		}
		mu.Lock()
		res.Interactions = interactions
		res.Detections = detections
		res.MeanLatencySec = Mean(latencies)
		mu.Unlock()
		return res, nil
	}

	r, err := run("event", 0)
	if err != nil {
		return nil, err
	}
	results = append(results, r)
	r, err = run("push", 0)
	if err != nil {
		return nil, err
	}
	results = append(results, r)
	for _, p := range cfg.PollEvery {
		r, err := run(fmt.Sprintf("poll-%s", p), p)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
	}
	return results, nil
}

// EventVsPollingTable renders E2.
func EventVsPollingTable(cfg EventVsPollingConfig) (*Table, []EventVsPollingResult, error) {
	rs, err := EventVsPolling(cfg)
	if err != nil {
		return nil, nil, err
	}
	t := NewTable(
		"E2 — Event-driven monitoring vs polling (paper §III) + A3 (predicate placement)",
		"mode", "interactions", "detections", "condition ticks", "mean latency")
	for _, r := range rs {
		t.AddRow(r.Mode, I(r.Interactions), I(r.Detections), I(r.TrueTicks),
			fmt.Sprintf("%.1fs", r.MeanLatencySec))
	}
	return t, rs, nil
}
