package experiment

import (
	"testing"
	"time"
)

// benchSLORouting runs one shortened E16 simulation per iteration: the
// full selection loop (trader query with dynamic-property resolution,
// band pick, SLO feed + monitor tick) is the work being measured.
func benchSLORouting(b *testing.B, policy string) {
	cfg := SLORouteConfig{
		Duration: 30 * time.Second,
		FaultAt:  5 * time.Second,
		FaultOff: 20 * time.Second,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SLORouting(cfg, policy); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE16SLORoutingP99(b *testing.B)     { benchSLORouting(b, PolicyP99Route) }
func BenchmarkE16SLORoutingLoadAvg(b *testing.B) { benchSLORouting(b, PolicyLoadAvgRoute) }
