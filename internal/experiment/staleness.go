package experiment

import (
	"context"
	"fmt"
	"math"
	"time"

	"autoadapt/internal/trading"
	"autoadapt/internal/wire"
)

// Ablation A2 (part of E5) — dynamic properties vs static snapshots.
//
// The paper's §IV case for dynamic properties is that they "reflect
// execution conditions that evolve dynamically". The alternative — offers
// carrying static values that agents refresh every R seconds — serves
// stale data between refreshes. This ablation quantifies the damage: N
// servers whose loads follow phase-shifted sinusoids; a client queries
// "least loaded under the threshold" once per second; a selection is a
// *misselection* when the chosen server's TRUE load violates the
// constraint at selection time, and *suboptimal* when a different server
// was truly lighter by a margin.

// StalenessConfig parameterizes A2.
type StalenessConfig struct {
	Servers   int           // default 5
	Duration  time.Duration // simulated (default 10min)
	QueryEach time.Duration // client query period (default 1s)
	Threshold float64       // constraint limit (default 5)
	// RefreshEach are the snapshot refresh periods to compare against the
	// dynamic-property trader (default 10s, 60s).
	RefreshEach []time.Duration
}

func (c *StalenessConfig) fillDefaults() {
	if c.Servers == 0 {
		c.Servers = 5
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Minute
	}
	if c.QueryEach == 0 {
		c.QueryEach = time.Second
	}
	if c.Threshold == 0 {
		c.Threshold = 5
	}
	if len(c.RefreshEach) == 0 {
		c.RefreshEach = []time.Duration{10 * time.Second, time.Minute}
	}
}

// StalenessResult is one mode's row.
type StalenessResult struct {
	Mode          string
	Queries       int64
	Misselections int64 // chosen server truly violates the constraint
	Suboptimal    int64 // a server at least 20% lighter existed
	EmptyResults  int64 // query matched nothing although a server qualified
}

// trueLoad is server i's load at simulated time t: sinusoids sweeping
// through the threshold with distinct phases.
func trueLoad(i int, t time.Duration, threshold float64) float64 {
	period := 4 * time.Minute
	phase := 2 * math.Pi * (float64(t%period)/float64(period) + float64(i)*0.17)
	return threshold * (1 + 0.8*math.Sin(phase))
}

// memResolver serves dynamic lookups from the current true loads.
type memResolver struct{ loads func(ref wire.ObjRef) float64 }

func (r memResolver) ResolveDynamic(_ context.Context, ref wire.ObjRef, _ string) (wire.Value, error) {
	return wire.Number(r.loads(ref)), nil
}

// Staleness runs A2 and returns one row per mode ("dynamic",
// "snapshot-<R>" per refresh period).
func Staleness(cfg StalenessConfig) ([]StalenessResult, error) {
	cfg.fillDefaults()
	var out []StalenessResult

	run := func(mode string, refresh time.Duration) (StalenessResult, error) {
		res := StalenessResult{Mode: mode}
		now := time.Duration(0)
		refAt := func(i int) wire.ObjRef {
			return wire.ObjRef{Endpoint: fmt.Sprintf("inproc|s-%d", i), Key: "svc"}
		}
		loadOf := func(ref wire.ObjRef) float64 {
			var i int
			if _, err := fmt.Sscanf(ref.Endpoint, "inproc|s-%d", &i); err != nil {
				return 0
			}
			return trueLoad(i, now, cfg.Threshold)
		}

		tr := trading.NewTrader(memResolver{loads: loadOf})
		tr.AddType(trading.ServiceType{Name: "S"})
		offerIDs := make([]string, cfg.Servers)
		for i := 0; i < cfg.Servers; i++ {
			props := map[string]trading.PropValue{}
			if mode == "dynamic" {
				props["LoadAvg"] = trading.PropValue{Dynamic: refAt(i)}
			} else {
				props["LoadAvg"] = trading.PropValue{Static: wire.Number(trueLoad(i, 0, cfg.Threshold))}
			}
			id, err := tr.Export("S", refAt(i), props)
			if err != nil {
				return res, err
			}
			offerIDs[i] = id
		}

		constraint := fmt.Sprintf("LoadAvg < %g", cfg.Threshold)
		ctx := context.Background()
		nextRefresh := refresh
		for now = 0; now < cfg.Duration; now += cfg.QueryEach {
			// Snapshot mode: agents refresh static values every R.
			if mode != "dynamic" && now >= nextRefresh {
				for i := 0; i < cfg.Servers; i++ {
					err := tr.Modify(offerIDs[i], map[string]trading.PropValue{
						"LoadAvg": {Static: wire.Number(trueLoad(i, now, cfg.Threshold))},
					})
					if err != nil {
						return res, err
					}
				}
				nextRefresh += refresh
			}
			rs, err := tr.Query(ctx, "S", constraint, "min LoadAvg", 1)
			if err != nil {
				return res, err
			}
			res.Queries++
			// Ground truth at this instant.
			best, bestLoad := -1, math.Inf(1)
			anyQualifies := false
			for i := 0; i < cfg.Servers; i++ {
				l := trueLoad(i, now, cfg.Threshold)
				if l < cfg.Threshold {
					anyQualifies = true
				}
				if l < bestLoad {
					best, bestLoad = i, l
				}
			}
			if len(rs) == 0 {
				if anyQualifies {
					res.EmptyResults++
				}
				continue
			}
			chosen := loadOf(rs[0].Offer.Ref)
			if chosen >= cfg.Threshold {
				res.Misselections++
			}
			if rs[0].Offer.Ref != refAt(best) && chosen > bestLoad*1.2 {
				res.Suboptimal++
			}
		}
		return res, nil
	}

	r, err := run("dynamic", 0)
	if err != nil {
		return nil, err
	}
	out = append(out, r)
	for _, refresh := range cfg.RefreshEach {
		r, err := run(fmt.Sprintf("snapshot-%s", refresh), refresh)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// StalenessTable renders A2.
func StalenessTable(cfg StalenessConfig) (*Table, []StalenessResult, error) {
	rs, err := Staleness(cfg)
	if err != nil {
		return nil, nil, err
	}
	t := NewTable(
		"A2 (E5) — Dynamic properties vs periodically refreshed snapshots (paper §IV)",
		"mode", "queries", "misselections", "suboptimal", "false empties")
	for _, r := range rs {
		t.AddRow(r.Mode, I(r.Queries), I(r.Misselections), I(r.Suboptimal), I(r.EmptyResults))
	}
	return t, rs, nil
}
