package experiment

import (
	"math"
	"sort"
	"time"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. Empty input yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// CoV returns the coefficient of variation (σ/μ); 0 when the mean is 0.
// It is the load-imbalance measure used by experiment E1: 0 means the
// servers did identical amounts of work.
func CoV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// MaxOverMean returns max(xs)/mean(xs), the other E1 imbalance measure;
// 1 is perfectly balanced. It returns 0 for empty or all-zero input.
func MaxOverMean(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	mx := xs[0]
	for _, x := range xs[1:] {
		if x > mx {
			mx = x
		}
	}
	return mx / m
}

// Seconds converts durations to float seconds.
func Seconds(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// Int64s converts integers to floats for the metric helpers.
func Int64s(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
