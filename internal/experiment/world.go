// Package experiment contains the harness that regenerates the paper's
// evaluation: workload generators, the simulated deployment of Fig. 6, the
// metrics, and the table renderers used by cmd/benchall and bench_test.go.
// DESIGN.md §3 maps each experiment (E1-E8) to the functions here.
package experiment

import (
	"context"
	"fmt"
	"time"

	"autoadapt/internal/hostenv"
	"autoadapt/internal/monitor"
	"autoadapt/internal/orb"
	"autoadapt/internal/trading"
	"autoadapt/internal/wire"
)

// ServiceTypeName is the traded type used by the load-sharing experiments.
const ServiceTypeName = "LoadShared"

// WorkOp is the operation exported by experiment servants: it accounts
// args[0] seconds of CPU demand on the simulated host and returns the
// dilated response time in seconds.
const WorkOp = "work"

// World is the paper's Fig. 6 deployment, assembled in-process: a trader,
// N server hosts (service servant + simulated host + LoadAvg monitor with
// the Fig. 3 aspects), and client-side plumbing.
type World struct {
	Net      *orb.InprocNetwork
	Trader   *trading.Trader
	Lookup   *trading.Lookup
	Client   *orb.Client
	ObsSrv   *orb.Server
	Hosts    []*hostenv.Host
	Monitors []*monitor.Monitor
	MonRefs  []wire.ObjRef
	SvcRefs  []wire.ObjRef

	servers []*orb.Server
	clients []*orb.Client
}

// WorldConfig sizes a World.
type WorldConfig struct {
	Servers int
	// SyncNotify delivers event notifications synchronously (two-way)
	// instead of oneway, making experiment timing deterministic.
	SyncNotify bool
}

// syncNotifier delivers notifications as blocking two-way calls so a
// monitor tick completes only after observers have seen their events.
type syncNotifier struct{ client *orb.Client }

func (n syncNotifier) Notify(ref wire.ObjRef, eventID string) error {
	_, err := n.client.Invoke(context.Background(), ref, "notifyEvent", wire.String(eventID))
	return err
}

// NewWorld assembles the deployment. Close releases everything.
func NewWorld(cfg WorldConfig) (*World, error) {
	w := &World{Net: orb.NewInprocNetwork()}
	fail := func(err error) (*World, error) {
		w.Close()
		return nil, err
	}

	resolver := orb.NewClient(w.Net)
	w.clients = append(w.clients, resolver)
	w.Trader = trading.NewTrader(trading.ClientResolver{Client: resolver})
	w.Trader.AddType(trading.ServiceType{Name: ServiceTypeName, Interface: "Service",
		Props: []string{"LoadAvg", "LoadAvgIncreasing", "Host"}})

	traderSrv, err := orb.NewServer(orb.ServerOptions{Network: w.Net, Address: "trader"})
	if err != nil {
		return fail(err)
	}
	w.servers = append(w.servers, traderSrv)
	traderRef := traderSrv.Register(trading.DefaultObjectKey, "", trading.NewServant(w.Trader))

	w.Client = orb.NewClient(w.Net)
	w.clients = append(w.clients, w.Client)
	w.Lookup = trading.NewLookup(w.Client, traderRef)

	w.ObsSrv, err = orb.NewServer(orb.ServerOptions{Network: w.Net, Address: "client-host"})
	if err != nil {
		return fail(err)
	}
	w.servers = append(w.servers, w.ObsSrv)

	notifyClient := orb.NewClient(w.Net)
	w.clients = append(w.clients, notifyClient)
	var notifier monitor.Notifier = monitor.ORBNotifier{Client: notifyClient}
	if cfg.SyncNotify {
		notifier = syncNotifier{client: notifyClient}
	}

	for i := 0; i < cfg.Servers; i++ {
		host := hostenv.New(hostenv.Options{Name: fmt.Sprintf("host-%d", i)})
		w.Hosts = append(w.Hosts, host)

		srv, err := orb.NewServer(orb.ServerOptions{Network: w.Net, Address: fmt.Sprintf("host-%d", i)})
		if err != nil {
			return fail(err)
		}
		w.servers = append(w.servers, srv)

		m, err := monitor.New(monitor.Options{
			Name:     "LoadAvg",
			Notifier: notifier,
			Update: func() (wire.Value, error) {
				one, five, fifteen, err := host.LoadAvg()
				if err != nil {
					return wire.Nil(), err
				}
				return wire.TableVal(wire.NewList(
					wire.Number(one), wire.Number(five), wire.Number(fifteen))), nil
			},
		})
		if err != nil {
			return fail(err)
		}
		w.Monitors = append(w.Monitors, m)
		if err := m.DefineAspect("Increasing", monitor.IncreasingAspectSrc); err != nil {
			return fail(err)
		}
		if err := m.DefineAspect(monitor.Load1Aspect, monitor.Load1AspectSrc); err != nil {
			return fail(err)
		}
		monRef := srv.Register("monitor/LoadAvg", "", monitor.NewServant(m))
		w.MonRefs = append(w.MonRefs, monRef)

		svcRef := srv.Register("service", "", workServant(host))
		w.SvcRefs = append(w.SvcRefs, svcRef)

		_, err = w.Trader.Export(ServiceTypeName, svcRef, map[string]trading.PropValue{
			"LoadAvg":           {Dynamic: monRef, Aspect: monitor.Load1Aspect},
			"LoadAvgIncreasing": {Dynamic: monRef, Aspect: "Increasing"},
			"Host":              {Static: wire.String(host.Name())},
		})
		if err != nil {
			return fail(err)
		}
	}
	return w, nil
}

// workServant serves WorkOp (windowed accounting) and hello.
func workServant(host *hostenv.Host) orb.Servant {
	return orb.ServantFunc(func(op string, args []wire.Value) ([]wire.Value, error) {
		switch op {
		case WorkOp:
			demand := time.Duration(1e9 * firstNum(args, 0.001))
			resp := host.RecordWork(demand)
			return []wire.Value{wire.Number(resp.Seconds())}, nil
		case "hello":
			return []wire.Value{wire.String("hello from " + host.Name())}, nil
		default:
			return nil, orb.Appf("no such operation %q", op)
		}
	})
}

func firstNum(args []wire.Value, def float64) float64 {
	if len(args) > 0 {
		if n, ok := args[0].AsNumber(); ok {
			return n
		}
	}
	return def
}

// TickMonitors runs one update cycle on every monitor (used instead of the
// internal timer so simulated minutes elapse deterministically).
func (w *World) TickMonitors() error {
	for _, m := range w.Monitors {
		if err := m.Tick(); err != nil {
			return err
		}
	}
	return nil
}

// SampleHosts closes one accounting window of length dt on every host.
func (w *World) SampleHosts(dt time.Duration) {
	for _, h := range w.Hosts {
		h.SampleWindow(dt)
	}
}

// ServedCounts returns per-host completed request counts.
func (w *World) ServedCounts() []int64 {
	out := make([]int64, len(w.Hosts))
	for i, h := range w.Hosts {
		out[i] = h.Served()
	}
	return out
}

// BusySeconds returns per-host accumulated busy time in seconds.
func (w *World) BusySeconds() []float64 {
	out := make([]float64, len(w.Hosts))
	for i, h := range w.Hosts {
		out[i] = h.BusyTime().Seconds()
	}
	return out
}

// Close tears the world down.
func (w *World) Close() {
	for _, m := range w.Monitors {
		m.Close()
	}
	for _, h := range w.Hosts {
		h.Close()
	}
	for _, c := range w.clients {
		_ = c.Close()
	}
	for _, s := range w.servers {
		_ = s.Close()
	}
}
