package experiment

import (
	"context"
	"fmt"
	"time"

	"autoadapt/internal/core"
	"autoadapt/internal/monitor"
)

// Experiment E6 — the paper's requirement-relaxation fallback (Fig. 7).
//
// Scenario: every server is loaded beyond the threshold, so re-selection
// cannot succeed. Two strategies are compared over a window in which the
// overload persists for a while and then one *other* server frees up:
//
//   - strict: on every LoadIncrease event, re-query with the original
//     constraint. The watch keeps firing each monitor period, so the proxy
//     keeps paying trader queries, but it recovers the instant any server
//     frees up.
//   - relax (Fig. 7): on failure, keep the current server and re-arm the
//     watch with a higher limit (threshold → 2·threshold). Queries stop —
//     the exact behaviour the paper programs — at the cost of not noticing
//     the freed server until its *own* server worsens past the relaxed
//     limit.
//
// Metrics: trader queries spent during the overload, whether/when the
// proxy migrated after relief, and events handled.

// RelaxConfig parameterizes E6.
type RelaxConfig struct {
	Servers       int           // default 3
	OverloadTicks int           // monitor periods of full overload (default 10)
	ReliefTicks   int           // periods after one server frees (default 10)
	Threshold     float64       // default 3
	MonitorPeriod time.Duration // default 60s (informational)
}

func (c *RelaxConfig) fillDefaults() {
	if c.Servers == 0 {
		c.Servers = 3
	}
	if c.OverloadTicks == 0 {
		c.OverloadTicks = 10
	}
	if c.ReliefTicks == 0 {
		c.ReliefTicks = 10
	}
	if c.Threshold == 0 {
		c.Threshold = 3
	}
	if c.MonitorPeriod == 0 {
		c.MonitorPeriod = time.Minute
	}
}

// RelaxResult is one strategy's row.
type RelaxResult struct {
	Strategy        string
	QueriesOverload int64 // trader queries during the overload phase
	QueriesRelief   int64 // trader queries after relief
	RecoveredAtTick int   // ticks after relief when the proxy migrated (-1: never)
	EventsHandled   int64
}

// RelaxedRequery runs E6 for both strategies.
func RelaxedRequery(cfg RelaxConfig) ([]RelaxResult, error) {
	cfg.fillDefaults()
	var out []RelaxResult
	for _, strategy := range []string{"strict", "relax"} {
		r, err := runRelax(cfg, strategy)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func runRelax(cfg RelaxConfig, strategy string) (RelaxResult, error) {
	res := RelaxResult{Strategy: strategy, RecoveredAtTick: -1}
	w, err := NewWorld(WorldConfig{Servers: cfg.Servers, SyncNotify: true})
	if err != nil {
		return res, err
	}
	defer w.Close()
	ctx := context.Background()

	constraint := fmt.Sprintf("LoadAvg < %g and LoadAvgIncreasing == no", cfg.Threshold)

	// Overload everyone; keep loads rising slightly so Increasing == yes
	// and the watch predicate can fire.
	high := cfg.Threshold * 2
	setLoads := func(i int, one, five float64) {
		// Monitors pull from the simulated hosts on each tick.
		w.Hosts[i].SetLoadAvg(one, five, five)
	}
	for i := range w.Monitors {
		setLoads(i, high, high*0.9)
	}
	if err := w.TickMonitors(); err != nil {
		return res, err
	}

	sp, err := core.New(core.Options{
		Client:           w.Client,
		Lookup:           w.Lookup,
		ServiceType:      ServiceTypeName,
		Constraint:       constraint,
		Preference:       "min LoadAvg",
		FallbackSortOnly: true,
		ObserverServer:   w.ObsSrv,
		Watches: []core.Watch{{
			Prop:      "LoadAvg",
			Event:     monitor.LoadIncreaseEvent,
			Predicate: monitor.LoadIncreasePredicateSrc(cfg.Threshold),
		}},
	})
	if err != nil {
		return res, err
	}
	defer sp.Close()

	switch strategy {
	case "strict":
		sp.SetStrategy(monitor.LoadIncreaseEvent, func(ctx context.Context, p *core.SmartProxy) error {
			_, err := p.Select(ctx, constraint)
			return err
		})
	case "relax":
		// The Fig. 7 strategy, verbatim semantics, through the script
		// bridge: on failure attach a relaxed observer at 2·threshold.
		err := sp.SetScriptStrategiesTable(fmt.Sprintf(`{
			LoadIncrease = function(self)
				self._loadavg = self._loadavgmon:getValue()
				local query
				query = "LoadAvg < %g and LoadAvgIncreasing == no"
				if not self:_select(query) then
					self._loadavgmon:attachEventObserver(
						self._observer,
						"LoadIncrease",
						[[function(observer, value, monitor)
							local incr
							incr = monitor:getAspectValue("Increasing")
							return value[1] > %g and incr == "yes"
						end]])
				end
			end
		}`, cfg.Threshold, cfg.Threshold*2))
		if err != nil {
			return res, err
		}
	default:
		return res, fmt.Errorf("experiment: unknown relax strategy %q", strategy)
	}

	if err := sp.Bind(ctx); err != nil {
		return res, err
	}
	boundRef, _ := sp.Current()
	boundIdx := -1
	for i, ref := range w.SvcRefs {
		if ref == boundRef {
			boundIdx = i
		}
	}
	if boundIdx < 0 {
		return res, fmt.Errorf("experiment: bound server not found")
	}
	// Relief target: any server other than the bound one.
	freeIdx := (boundIdx + 1) % cfg.Servers

	queriesBefore := sp.Stats().Selections

	tick := func() error {
		if err := w.TickMonitors(); err != nil {
			return err
		}
		// One invocation per tick drives postponed handling.
		if _, err := sp.Invoke(ctx, "hello"); err != nil {
			return err
		}
		return nil
	}

	// Phase 1: overload.
	for i := 0; i < cfg.OverloadTicks; i++ {
		if err := tick(); err != nil {
			return res, err
		}
	}
	res.QueriesOverload = sp.Stats().Selections - queriesBefore

	// Phase 2: relief — freeIdx drops to an idle, steady load.
	setLoads(freeIdx, 0.2, 0.5)
	queriesAtRelief := sp.Stats().Selections
	for i := 0; i < cfg.ReliefTicks; i++ {
		if err := tick(); err != nil {
			return res, err
		}
		ref, _ := sp.Current()
		if ref == w.SvcRefs[freeIdx] && res.RecoveredAtTick < 0 {
			res.RecoveredAtTick = i + 1
		}
	}
	res.QueriesRelief = sp.Stats().Selections - queriesAtRelief
	res.EventsHandled = sp.Stats().EventsHandled
	return res, nil
}

// RelaxTable renders E6.
func RelaxTable(cfg RelaxConfig) (*Table, []RelaxResult, error) {
	rs, err := RelaxedRequery(cfg)
	if err != nil {
		return nil, nil, err
	}
	t := NewTable(
		"E6 — Requirement relaxation under total overload (paper §V, Fig. 7)",
		"strategy", "queries (overload)", "queries (relief)", "recovered at tick", "events handled")
	for _, r := range rs {
		rec := "never"
		if r.RecoveredAtTick >= 0 {
			rec = fmt.Sprintf("%d", r.RecoveredAtTick)
		}
		t.AddRow(r.Strategy, I(r.QueriesOverload), I(r.QueriesRelief), rec, I(r.EventsHandled))
	}
	return t, rs, nil
}
