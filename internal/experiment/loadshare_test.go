package experiment

import (
	"testing"
	"time"
)

// shortE1 keeps test runs fast: 4 servers, 6 clients, 8 simulated minutes.
func shortE1() LoadShareConfig {
	return LoadShareConfig{
		Servers:        4,
		Clients:        6,
		Duration:       8 * time.Minute,
		Think:          2 * time.Second,
		Demand:         500 * time.Millisecond,
		Threshold:      2,
		BackgroundLoad: 6,
		BackgroundAt:   3 * time.Minute,
	}
}

func TestLoadSharingAdaptiveRebalances(t *testing.T) {
	adaptive, err := LoadSharing(shortE1(), PolicyAdaptive)
	if err != nil {
		t.Fatal(err)
	}
	static, err := LoadSharing(shortE1(), PolicyStatic)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("adaptive: %+v", adaptive)
	t.Logf("static:   %+v", static)

	if adaptive.Switches == 0 {
		t.Error("adaptive policy never switched servers")
	}
	if static.Switches != 0 {
		t.Error("static policy somehow switched servers")
	}
	// The paper's claim: one-shot selection leaves the system unbalanced;
	// dynamic switching rebalances. All static clients herd onto one
	// server, so its imbalance must exceed the adaptive policy's.
	if !(adaptive.ImbalanceCoV < static.ImbalanceCoV) {
		t.Errorf("imbalance: adaptive %.3f !< static %.3f",
			adaptive.ImbalanceCoV, static.ImbalanceCoV)
	}
	// And the adaptive clients answer faster under the disturbance.
	if !(adaptive.MeanRespSec < static.MeanRespSec) {
		t.Errorf("mean resp: adaptive %.3f !< static %.3f",
			adaptive.MeanRespSec, static.MeanRespSec)
	}
	// Static uses exactly one trader interaction per client; adaptive
	// re-queries on events.
	if adaptive.TraderQueries <= int64(shortE1().Clients) {
		t.Errorf("adaptive trader queries = %d, want more than one per client", adaptive.TraderQueries)
	}
}

func TestLoadSharingAllPoliciesRun(t *testing.T) {
	cfg := shortE1()
	cfg.Duration = 4 * time.Minute
	table, results, err := LoadSharingTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(AllPolicies) {
		t.Fatalf("results = %d, want %d", len(results), len(AllPolicies))
	}
	out := table.Render()
	t.Logf("\n%s", out)
	for _, p := range AllPolicies {
		r := results[indexOf(AllPolicies, p)]
		if r.Requests == 0 {
			t.Errorf("policy %s served no requests", p)
		}
		sum := int64(0)
		for _, s := range r.PerServer {
			sum += s
		}
		if sum != r.Requests {
			t.Errorf("policy %s: per-server sum %d != requests %d", p, sum, r.Requests)
		}
	}
}

func TestLoadSharingUnknownPolicy(t *testing.T) {
	if _, err := LoadSharing(shortE1(), "psychic"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}
