package experiment

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"autoadapt/internal/core"
	"autoadapt/internal/orb"
	"autoadapt/internal/trading"
	"autoadapt/internal/wire"
)

// Experiment E3 / ablation A1 — postponed vs immediate event handling.
//
// The paper postpones event handling "until the next service invocation"
// because "the postponement of event handling avoids conflicts with
// ongoing traffic when a reconfiguration is done". This experiment
// quantifies the trade-off: a single client issues a steady stream of
// invocations against a slow servant while events arrive asynchronously.
//
//   - postponed: strategies run inside Invoke, before the request — so a
//     reconfiguration can never overlap the client's own in-flight call.
//     Cost: the event waits for the next invocation (handling delay), and
//     that invocation absorbs the strategy's latency.
//   - immediate: strategies run in the notification upcall — zero handling
//     delay, but reconfigurations overlap in-flight traffic.
//
// Metrics: reconfigurations overlapping an in-flight invocation, mean
// event-to-handling delay, and the adaptation latency absorbed by
// invocations.

// PostponeConfig parameterizes E3.
type PostponeConfig struct {
	Events       int           // events injected (default 40)
	ServiceTime  time.Duration // servant latency, real time (default 2ms)
	ThinkTime    time.Duration // client gap between calls (default 1ms)
	StrategyTime time.Duration // simulated reconfiguration work (default 3ms)
}

func (c *PostponeConfig) fillDefaults() {
	if c.Events == 0 {
		c.Events = 40
	}
	if c.ServiceTime == 0 {
		c.ServiceTime = 2 * time.Millisecond
	}
	if c.ThinkTime == 0 {
		c.ThinkTime = time.Millisecond
	}
	if c.StrategyTime == 0 {
		c.StrategyTime = 3 * time.Millisecond
	}
}

// PostponeResult is one mode's row.
type PostponeResult struct {
	Mode                string
	Events              int64
	StrategyRuns        int64
	OverlappedReconfigs int64   // strategy ran while a call was in flight
	MeanHandlingDelayMs float64 // notify → strategy start
}

// PostponedVsImmediate runs E3 for both modes.
func PostponedVsImmediate(cfg PostponeConfig) ([]PostponeResult, error) {
	cfg.fillDefaults()
	var out []PostponeResult
	for _, immediate := range []bool{false, true} {
		r, err := runPostpone(cfg, immediate)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func runPostpone(cfg PostponeConfig, immediate bool) (PostponeResult, error) {
	mode := "postponed"
	if immediate {
		mode = "immediate"
	}
	res := PostponeResult{Mode: mode}

	net := orb.NewInprocNetwork()
	srv, err := orb.NewServer(orb.ServerOptions{Network: net, Address: "server"})
	if err != nil {
		return res, err
	}
	defer srv.Close()

	var inflight atomic.Int64
	svcRef := srv.Register("service", "", orb.ServantFunc(func(op string, args []wire.Value) ([]wire.Value, error) {
		inflight.Add(1)
		time.Sleep(cfg.ServiceTime)
		inflight.Add(-1)
		return []wire.Value{wire.Bool(true)}, nil
	}))

	client := orb.NewClient(net)
	defer client.Close()

	sp, err := core.New(core.Options{Client: client, Immediate: immediate})
	if err != nil {
		return res, err
	}
	defer sp.Close()
	if err := sp.BindTo(context.Background(), trading.QueryResult{
		Offer: trading.Offer{ID: "offer-1", ServiceType: "S", Ref: svcRef},
	}); err != nil {
		return res, err
	}

	var overlapped, runs atomic.Int64
	var delayTotalNs atomic.Int64
	var lastNotify atomic.Int64 // unix nanos of the pending event's arrival
	sp.SetStrategy("Disturbance", func(ctx context.Context, p *core.SmartProxy) error {
		runs.Add(1)
		if t := lastNotify.Swap(0); t != 0 {
			delayTotalNs.Add(time.Now().UnixNano() - t)
		}
		if inflight.Load() > 0 {
			overlapped.Add(1)
		}
		time.Sleep(cfg.StrategyTime) // reconfiguration work
		return nil
	})

	// Client stream in the main goroutine; events injected from a second.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < cfg.Events; i++ {
			select {
			case <-stop:
				return
			default:
			}
			lastNotify.Store(time.Now().UnixNano())
			sp.OnEvent("Disturbance")
			res.Events++
			// Space events so each is (usually) handled before the next.
			time.Sleep(cfg.ServiceTime + cfg.StrategyTime + cfg.ThinkTime)
		}
	}()

	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := sp.Invoke(context.Background(), "work"); err != nil {
			close(stop)
			<-done
			return res, err
		}
		time.Sleep(cfg.ThinkTime)
		select {
		case <-done:
			// Drain any final pending event.
			if err := sp.Adapt(context.Background()); err != nil {
				return res, err
			}
			res.StrategyRuns = runs.Load()
			res.OverlappedReconfigs = overlapped.Load()
			if res.StrategyRuns > 0 {
				res.MeanHandlingDelayMs = float64(delayTotalNs.Load()) / float64(res.StrategyRuns) / 1e6
			}
			return res, nil
		default:
		}
		if time.Now().After(deadline) {
			close(stop)
			<-done
			return res, fmt.Errorf("experiment: E3 %s mode did not finish", mode)
		}
	}
}

// PostponeTable renders E3.
func PostponeTable(cfg PostponeConfig) (*Table, []PostponeResult, error) {
	rs, err := PostponedVsImmediate(cfg)
	if err != nil {
		return nil, nil, err
	}
	t := NewTable(
		"E3 — Postponed vs immediate event handling (paper §IV-A, ablation A1)",
		"mode", "events", "strategy runs", "overlapped reconfigs", "mean handling delay")
	for _, r := range rs {
		t.AddRow(r.Mode, I(r.Events), I(r.StrategyRuns), I(r.OverlappedReconfigs),
			fmt.Sprintf("%.2fms", r.MeanHandlingDelayMs))
	}
	return t, rs, nil
}
