package experiment

import (
	"testing"
	"time"

	"autoadapt/internal/monitor"
)

// E15 shape: under 2x offered load the governed server keeps goodput near
// capacity with bounded latency and a flat goroutine count; the
// ungoverned baseline queues up, blows deadlines, and spills goroutines.
func TestOverloadGovernedVsUngoverned(t *testing.T) {
	if testing.Short() {
		t.Skip("overload experiment runs real time")
	}
	cfg := OverloadConfig{
		Slots:         4,
		ServiceTime:   20 * time.Millisecond,
		LoadFactor:    2,
		Duration:      1200 * time.Millisecond,
		Deadline:      250 * time.Millisecond,
		MaxConcurrent: 8,
		MaxQueue:      8,
	}
	rs, err := Overload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gov, raw := rs[0], rs[1]
	t.Logf("governed:   %+v", gov)
	t.Logf("ungoverned: %+v", raw)

	// Acceptance: goodput within 15% of capacity at 2x offered load.
	if gov.Goodput < 0.85 {
		t.Errorf("governed goodput = %.2f, want >= 0.85 of capacity", gov.Goodput)
	}
	// Bounded latency: everything admitted finishes inside the deadline,
	// so the censored p99 sits strictly below it.
	if gov.P99Ms >= float64(cfg.Deadline/time.Millisecond) {
		t.Errorf("governed p99 = %.1fms, want < %v (no deadline misses)", gov.P99Ms, cfg.Deadline)
	}
	if gov.Missed > gov.Offered/50 {
		t.Errorf("governed deadline misses = %d of %d", gov.Missed, gov.Offered)
	}
	// The excess load was refused at admission, not absorbed.
	if gov.Shed == 0 || gov.Stats.ShedRequests == 0 {
		t.Errorf("governed shed = %d (stats %+v), want > 0", gov.Shed, gov.Stats)
	}
	// Flat goroutines: bounded by the pool, not the backlog.
	if gov.MaxGrowth > cfg.MaxConcurrent+24 {
		t.Errorf("governed goroutine growth = %d, want <= %d", gov.MaxGrowth, cfg.MaxConcurrent+24)
	}

	// The baseline admits everything and collapses: a growing backlog
	// pushes later requests past their deadline and spills goroutines.
	if raw.Missed < raw.Offered/4 {
		t.Errorf("ungoverned misses = %d of %d, expected collapse", raw.Missed, raw.Offered)
	}
	if raw.Goodput >= gov.Goodput {
		t.Errorf("ungoverned goodput %.2f >= governed %.2f", raw.Goodput, gov.Goodput)
	}
	if raw.MaxGrowth < gov.MaxGrowth*3 {
		t.Errorf("ungoverned goroutine growth = %d, governed = %d: expected spill",
			raw.MaxGrowth, gov.MaxGrowth)
	}
}

func TestHostileQuarantineLatency(t *testing.T) {
	ticks, err := HostileQuarantine(5000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("hostile aspect quarantined after %d events", ticks)
	if ticks != monitor.DefaultMaxScriptFailures {
		t.Errorf("quarantine latency = %d events, want %d", ticks, monitor.DefaultMaxScriptFailures)
	}
}
