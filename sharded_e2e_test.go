package autoadapt

// End-to-end coverage for the sharded trading service behind the facade:
// the same Fig. 6 deployment as integration_test.go, but with the trader
// replaced by StartShardedTrader — agents and clients must not need any
// change, and the shardStatus introspection op must describe the
// placement.

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"autoadapt/internal/orb"
	"autoadapt/internal/wire"
)

func TestShardedTraderFullStack(t *testing.T) {
	network := NewInprocNetwork()
	ctx := context.Background()

	trader, err := StartShardedTrader(ShardedTraderOptions{
		Network:  network,
		Address:  "trader",
		Shards:   3,
		Standbys: 1,
		Types: []ServiceType{
			{Name: "Hello", Props: []string{"LoadAvg", "LoadAvgIncreasing", "Host"}},
			{Name: "Other", Props: []string{"LoadAvg"}},
		},
		CheckIDL: true,
		LeaseTTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = trader.Close() })

	platform, err := Connect(network, trader.Ref, "client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = platform.Close() })

	// Agents export through the remote lookup exactly as against a single
	// trader; the servant routes each export to the owning shard.
	dials := []*dialSource{newDialSource(0.2), newDialSource(0.3)}
	for i, d := range dials {
		name := fmt.Sprintf("srv-%d", i)
		ag, err := StartAgent(ctx, AgentOptions{
			Network:       network,
			Address:       name,
			Lookup:        platform.Lookup,
			ServiceType:   "Hello",
			Servant:       helloServant(name),
			LoadSource:    d,
			MonitorPeriod: 25 * time.Millisecond,
			StaticProps:   map[string]wire.Value{"Host": wire.String(name)},
			LeaseTTL:      time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = ag.Close(context.Background()) })
	}

	rs, err := platform.Lookup.Query(ctx, "Hello", "", "min LoadAvg", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("query through sharded trader returned %d offers, want 2", len(rs))
	}
	if rs[0].Snapshot["Host"].Str() != "srv-0" {
		t.Fatalf("preference order wrong: best offer from %s", rs[0].Snapshot["Host"])
	}

	// A smart proxy binds and invokes against the sharded trader unchanged.
	proxy, err := platform.NewSmartProxy(ProxyOptions{
		ServiceType:      "Hello",
		Preference:       "min LoadAvg",
		FallbackSortOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)
	if err := proxy.Bind(ctx); err != nil {
		t.Fatal(err)
	}
	out, err := proxy.Invoke(ctx, "hello")
	if err != nil || out[0].Str() != "srv-0" {
		t.Fatalf("invoke through proxy = %v, %v", out, err)
	}

	// listTypes answers the router's registered types.
	client := orb.NewClient(network)
	t.Cleanup(func() { _ = client.Close() })
	lt, err := client.Invoke(ctx, trader.Ref, "listTypes")
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	if tb, ok := lt[0].AsTable(); ok {
		for i := 1; i <= tb.Len(); i++ {
			names[tb.Index(i).Str()] = true
		}
	}
	if !names["Hello"] || !names["Other"] {
		t.Fatalf("listTypes = %v, want Hello and Other", names)
	}

	// shardStatus reports the placement: three live shards, every type
	// owned by exactly one of them, and a manager section with one free
	// standby.
	st, err := client.Invoke(ctx, trader.Ref, "shardStatus")
	if err != nil {
		t.Fatal(err)
	}
	status, ok := st[0].AsTable()
	if !ok {
		t.Fatalf("shardStatus reply is %s, want table", st[0].Kind())
	}
	shardsTb, ok := status.GetString("shards").AsTable()
	if !ok || shardsTb.Len() != 3 {
		t.Fatalf("shardStatus shards = %v, want 3 entries", status.GetString("shards"))
	}
	ownedTypes := 0
	for i := 1; i <= shardsTb.Len(); i++ {
		sh, _ := shardsTb.Index(i).AsTable()
		if alive, _ := sh.GetString("alive").AsBool(); !alive {
			t.Fatalf("shard %d reported dead", i)
		}
		if owned, ok := sh.GetString("owned").AsTable(); ok {
			ownedTypes += owned.Len()
		}
	}
	if ownedTypes != 2 {
		t.Fatalf("shardStatus places %d types, want 2", ownedTypes)
	}
	routerTb, ok := status.GetString("router").AsTable()
	if !ok || routerTb.GetString("queries").Num() == 0 {
		t.Fatalf("shardStatus router counters = %v", status.GetString("router"))
	}
	mgrTb, ok := status.GetString("manager").AsTable()
	if !ok {
		t.Fatal("shardStatus has no manager section despite standbys")
	}
	if got := int(mgrTb.GetString("freeStandbys").Num()); got != 1 {
		t.Fatalf("freeStandbys = %d, want 1", got)
	}
}

// Regression: the ensemble-wide trading_* gauges must survive standby
// creation. Standbys are built with the same SetMetrics(reg) path as the
// shards, and GaugeFunc is last-wins on a duplicate name — registering
// the ensemble sums before the standbys existed let an idle standby's
// per-trader gauge shadow them, so a sharded daemon with -standbys
// reported trading_queries 0 forever while the shared latency histogram
// kept counting.
func TestShardedTraderEnsembleGaugesWithStandbys(t *testing.T) {
	network := NewInprocNetwork()
	ctx := context.Background()

	reg := NewMetricsRegistry()
	trader, err := StartShardedTrader(ShardedTraderOptions{
		Network:  network,
		Address:  "trader",
		Shards:   2,
		Standbys: 1,
		Types: []ServiceType{
			{Name: "Hello", Props: []string{"LoadAvg", "LoadAvgIncreasing", "Host"}},
		},
		CheckIDL: true,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = trader.Close() })

	platform, err := Connect(network, trader.Ref, "client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = platform.Close() })

	ag, err := StartAgent(ctx, AgentOptions{
		Network:       network,
		Address:       "srv-0",
		Lookup:        platform.Lookup,
		ServiceType:   "Hello",
		Servant:       helloServant("srv-0"),
		LoadSource:    newDialSource(0.2),
		MonitorPeriod: 25 * time.Millisecond,
		StaticProps:   map[string]wire.Value{"Host": wire.String("srv-0")},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ag.Close(context.Background()) })

	if _, err := platform.Lookup.Query(ctx, "Hello", "", "min LoadAvg", 0); err != nil {
		t.Fatal(err)
	}

	gauge := func(name string) float64 {
		var v float64
		for _, line := range strings.Split(reg.Text(), "\n") {
			if n, ok := strings.CutPrefix(line, name+" "); ok {
				fmt.Sscanf(n, "%g", &v)
			}
		}
		return v
	}
	if got := gauge("trading_queries"); got < 1 {
		t.Errorf("trading_queries = %g after a query, want >= 1", got)
	}
	if got := gauge("trading_offers"); got != 1 {
		t.Errorf("trading_offers = %g with one exported offer, want 1", got)
	}
	if got := gauge("trading_exports"); got < 1 {
		t.Errorf("trading_exports = %g after an export, want >= 1", got)
	}
}
