// Quickstart: the paper's §V HelloWorld application, end to end, over real
// TCP loopback sockets.
//
// One process plays every role of Fig. 6: a trading service, two service
// agents (each exporting a hello server with a live LoadAvg monitor), and
// a client whose smart proxy selects the least-loaded server, ships the
// Fig. 4 event predicate to the selected server's monitor, and switches
// servers when the shipped predicate fires.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sync/atomic"
	"time"

	"autoadapt"
	"autoadapt/internal/monitor"
	"autoadapt/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

// spikeLoad is a load source whose 1-minute average we control from main;
// the 5-minute average stays at 0.4 so a spike reads as "increasing".
type spikeLoad struct{ load1 atomic.Value }

func newSpikeLoad(initial float64) *spikeLoad {
	s := &spikeLoad{}
	s.load1.Store(initial)
	return s
}

func (s *spikeLoad) set(v float64) { s.load1.Store(v) }

func (s *spikeLoad) LoadAvg() (float64, float64, float64, error) {
	return s.load1.Load().(float64), 0.4, 0.4, nil
}

func run() error {
	ctx := context.Background()
	network := autoadapt.TCP()
	logger := log.New(os.Stderr, "quickstart ", log.Ltime)

	// 1. Trading service.
	trader, err := autoadapt.StartTrader(autoadapt.TraderOptions{
		Network: network,
		Address: "127.0.0.1:0",
		Types: []autoadapt.ServiceType{{
			Name: "Hello", Interface: "HelloService",
			Props: []string{"LoadAvg", "LoadAvgIncreasing", "Host"},
		}},
	})
	if err != nil {
		return err
	}
	defer trader.Close()
	fmt.Println("trader listening on", trader.Endpoint())

	// 2. Client platform: ORB client + lookup + observer callback server.
	platform, err := autoadapt.Connect(network, trader.Ref, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer platform.Close()

	// 3. Two service agents, each a hello server plus a load monitor.
	loads := []*spikeLoad{newSpikeLoad(0.2), newSpikeLoad(0.3)}
	var agents []*autoadapt.Agent
	for i, ld := range loads {
		name := fmt.Sprintf("server-%d", i+1)
		ag, err := autoadapt.StartAgent(ctx, autoadapt.AgentOptions{
			Network:     network,
			Address:     "127.0.0.1:0",
			Lookup:      platform.Lookup,
			ServiceType: "Hello",
			Servant: autoadapt.ServantFunc(func(op string, args []wire.Value) ([]wire.Value, error) {
				if op != "hello" {
					return nil, fmt.Errorf("no such operation %q", op)
				}
				return []wire.Value{wire.String("hello from " + name)}, nil
			}),
			LoadSource:    ld,
			MonitorPeriod: 50 * time.Millisecond, // paper: 60s; sped up for the demo
			StaticProps:   map[string]wire.Value{"Host": wire.String(name)},
			Logger:        logger,
		})
		if err != nil {
			return err
		}
		defer ag.Close(ctx)
		agents = append(agents, ag)
		fmt.Printf("%s exporting offer %s from %s\n", name, ag.OfferID(), ag.Endpoint())
	}

	// 4. The smart proxy (the paper's load-sharing proxy).
	proxy, err := platform.NewSmartProxy(autoadapt.ProxyOptions{
		ServiceType:      "Hello",
		Constraint:       "LoadAvg < 1 and LoadAvgIncreasing == no",
		Preference:       "min LoadAvg",
		FallbackSortOnly: true,
		Watches: []autoadapt.Watch{{
			Prop:      "LoadAvg",
			Event:     monitor.LoadIncreaseEvent,
			Predicate: monitor.LoadIncreasePredicateSrc(1), // Fig. 4, limit 1
		}},
		Logger: logger,
	})
	if err != nil {
		return err
	}
	defer proxy.Close()
	proxy.SetStrategy(monitor.LoadIncreaseEvent, func(ctx context.Context, p *autoadapt.SmartProxy) error {
		ok, err := p.Select(ctx, "LoadAvg < 1 and LoadAvgIncreasing == no")
		if err == nil && ok {
			ref, _ := p.Current()
			fmt.Println("  [adaptation] switched to", ref)
		}
		return err
	})
	if err := proxy.Bind(ctx); err != nil {
		return err
	}
	ref, _ := proxy.Current()
	fmt.Println("smart proxy bound to", ref)

	// 5. The client loop: call hello repeatedly; spike server-1's load
	// midway and watch the proxy move (paper §V: "the client repeatedly
	// called function hello, so that we could observe the adaptation
	// methods in action").
	for i := 1; i <= 12; i++ {
		if i == 4 {
			fmt.Println("  [load] spiking server-1's load average to 5.0")
			loads[0].set(5.0)
		}
		rs, err := proxy.Invoke(ctx, "hello")
		if err != nil {
			return err
		}
		fmt.Printf("call %2d: %s\n", i, rs[0].Str())
		time.Sleep(60 * time.Millisecond) // > monitor period, so ticks land
	}

	st := proxy.Stats()
	fmt.Printf("\ndone: %d invocations, %d events handled, %d server switch(es)\n",
		st.Invocations, st.EventsHandled, st.Switches)
	if st.Switches == 0 {
		return fmt.Errorf("expected at least one adaptation switch")
	}
	return nil
}
