// Contextaware: the paper's §VI ongoing work, built on the same
// infrastructure — "adaptation strategies that consider not only quality
// of service properties, but also other properties of the application's
// execution environment, such as user location, user activity, and time of
// day" (the Gaia active-space scenario).
//
// A user moves through rooms of an active space. Each room runs a display
// service whose offer carries a static Room property plus a dynamic
// Occupancy property served by a monitor. The user's location is itself a
// monitored property: a shipped predicate fires a UserMoved event whenever
// it changes, and the adaptation strategy re-selects the display in the
// user's current room, preferring the least occupied one.
//
// Run:
//
//	go run ./examples/contextaware
package main

import (
	"context"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"autoadapt"
	"autoadapt/internal/monitor"
	"autoadapt/internal/orb"
	"autoadapt/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "contextaware:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	network := autoadapt.NewInprocNetwork()

	trader, err := autoadapt.StartTrader(autoadapt.TraderOptions{
		Network: network,
		Address: "trader",
		Types: []autoadapt.ServiceType{{
			Name: "Display", Interface: "DisplayService",
			Props: []string{"Room", "Occupancy"},
		}},
	})
	if err != nil {
		return err
	}
	defer trader.Close()

	platform, err := autoadapt.Connect(network, trader.Ref, "wearable")
	if err != nil {
		return err
	}
	defer platform.Close()

	// Room displays: each room exports a display service with a dynamic
	// occupancy property.
	rooms := []string{"lobby", "lab", "auditorium"}
	occupancy := map[string]*atomic.Int64{}
	for _, room := range rooms {
		occ := &atomic.Int64{}
		occupancy[room] = occ
		srv, err := startRoom(network, platform, room, occ)
		if err != nil {
			return err
		}
		defer srv.Close()
	}

	// The user's location is a monitored context property on the wearable.
	location := &atomic.Value{}
	location.Store("lobby")
	locMon, err := monitor.New(monitor.Options{
		Name: "UserLocation",
		Update: func() (wire.Value, error) {
			return wire.String(location.Load().(string)), nil
		},
		Notifier: monitor.ORBNotifier{Client: platform.Client},
	})
	if err != nil {
		return err
	}
	defer locMon.Close()

	// The display proxy: constraint and strategy are rebuilt per location.
	proxy, err := platform.NewSmartProxy(autoadapt.ProxyOptions{
		ServiceType: "Display",
		Constraint:  "Room == 'lobby'",
		Preference:  "min Occupancy",
	})
	if err != nil {
		return err
	}
	defer proxy.Close()
	proxy.SetStrategy("UserMoved", func(ctx context.Context, p *autoadapt.SmartProxy) error {
		v, err := locMon.Value()
		if err != nil {
			return err
		}
		room := v.Str()
		ok, err := p.Select(ctx, fmt.Sprintf("Room == '%s'", room))
		if err == nil && ok {
			ref, _ := p.Current()
			fmt.Printf("  [context] user entered %s → display is now %v\n", room, ref)
		}
		return err
	})
	if err := proxy.Bind(ctx); err != nil {
		return err
	}

	// A shipped predicate that fires whenever the location changes — the
	// paper's remote-evaluation pattern applied to a context property.
	if _, err := locMon.AttachObserver(proxy.ObserverRef(), "UserMoved",
		`function(observer, value, monitor)
			local moved = (monitor.last ~= nil and monitor.last ~= value)
			monitor.last = value
			return moved
		end`); err != nil {
		return err
	}

	show := func(msg string) error {
		rs, err := proxy.Invoke(ctx, "show", wire.String(msg))
		if err != nil {
			return err
		}
		fmt.Println(rs[0].Str())
		return nil
	}

	// The user walks through the building.
	occupancy["auditorium"].Store(40) // a talk is on
	walk := []string{"lobby", "lab", "lab", "auditorium", "lobby"}
	prev := "lobby"
	for step, room := range walk {
		location.Store(room)
		if err := locMon.Tick(); err != nil { // location sensor update
			return err
		}
		if room != prev {
			// Notifications are oneway; wait for delivery so the demo's
			// output is deterministic.
			deadline := time.Now().Add(5 * time.Second)
			for len(proxy.PendingEvents()) == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
		}
		prev = room
		if err := show(fmt.Sprintf("notification #%d", step+1)); err != nil {
			return err
		}
	}

	st := proxy.Stats()
	fmt.Printf("\ndone: %d notifications shown, %d display switches as the user moved\n",
		st.Invocations, st.Switches)
	if st.Switches < 3 {
		return fmt.Errorf("expected the display to follow the user")
	}
	return nil
}

// startRoom exports one room's display service.
func startRoom(network autoadapt.Network, platform *autoadapt.Platform, room string, occ *atomic.Int64) (closer, error) {
	srv, err := orb.NewServer(orb.ServerOptions{Network: network, Address: "room-" + room})
	if err != nil {
		return nil, err
	}
	occMon, err := monitor.New(monitor.Options{
		Name: "Occupancy",
		Update: func() (wire.Value, error) {
			return wire.Number(float64(occ.Load())), nil
		},
	})
	if err != nil {
		_ = srv.Close()
		return nil, err
	}
	if err := occMon.Tick(); err != nil {
		_ = srv.Close()
		return nil, err
	}
	monRef := srv.Register("monitor/Occupancy", "", monitor.NewServant(occMon))
	svcRef := srv.Register("display", "", autoadapt.ServantFunc(func(op string, args []wire.Value) ([]wire.Value, error) {
		if op != "show" {
			return nil, fmt.Errorf("no such operation %q", op)
		}
		return []wire.Value{wire.String(fmt.Sprintf("[%s display] %s", room, args[0].Str()))}, nil
	}))
	_, err = platform.Lookup.Export(context.Background(), "Display", svcRef, map[string]autoadapt.PropValue{
		"Room":      {Static: wire.String(room)},
		"Occupancy": {Dynamic: monRef},
	})
	if err != nil {
		occMon.Close()
		_ = srv.Close()
		return nil, err
	}
	return closerFunc(func() error { occMon.Close(); return srv.Close() }), nil
}

type closer interface{ Close() error }

type closerFunc func() error

func (f closerFunc) Close() error { return f() }
