// Loadsharing: the paper's §V load-sharing example at experiment scale,
// with the Fig. 7 adaptation strategy executed from its *script source*.
//
// This example runs the E1 scenario on simulated hosts — K clients, N
// servers, a mid-run load disturbance — once with the paper's adaptive
// smart proxy and once with the one-shot trader selection of Badidi et
// al. [20] that the paper contrasts itself against, then prints the
// comparison table. It also demonstrates the Fig. 7 strategy shipped as
// text: the same source string the paper lists.
//
// Run:
//
//	go run ./examples/loadsharing
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"autoadapt/internal/core"
	"autoadapt/internal/experiment"
	"autoadapt/internal/monitor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadsharing:", err)
		os.Exit(1)
	}
}

// fig7Strategy is the paper's Fig. 7 listing, reproduced as shipped script
// source (the limits scaled from the paper's 50/70 to this deployment's
// load range, as §V notes the limits are deployment-specific).
const fig7Strategy = `{
	LoadIncrease = function(self)
		-- get the current load average
		self._loadavg = self._loadavgmon:getValue()

		-- look for an alternative server
		local query
		query = "LoadAvg < 3 and LoadAvgIncreasing == no"
		if not self:_select(query) then
			self._loadavgmon:attachEventObserver(
				self._observer,
				"LoadIncrease",
				[[function(observer, value, monitor)
					local incr
					incr = monitor:getAspectValue("Increasing")
					return value[1] > 6 and incr == "yes"
				end]])
		end
	end
}`

func run() error {
	// Part 1: show the Fig. 7 strategy driving a live proxy.
	fmt.Println("— Fig. 7 strategy, shipped as script source —")
	w, err := experiment.NewWorld(experiment.WorldConfig{Servers: 3, SyncNotify: true})
	if err != nil {
		return err
	}
	defer w.Close()
	ctx := context.Background()

	// Unbalanced start: host-0 idle, others busy.
	w.Hosts[0].SetLoadAvg(0.5, 0.6, 0.6)
	w.Hosts[1].SetLoadAvg(4.0, 3.5, 3.0)
	w.Hosts[2].SetLoadAvg(5.0, 4.5, 4.0)
	if err := w.TickMonitors(); err != nil {
		return err
	}

	sp, err := core.New(core.Options{
		Client:           w.Client,
		Lookup:           w.Lookup,
		ServiceType:      experiment.ServiceTypeName,
		Constraint:       "LoadAvg < 3 and LoadAvgIncreasing == no",
		Preference:       "min LoadAvg",
		FallbackSortOnly: true,
		ObserverServer:   w.ObsSrv,
		Watches: []core.Watch{{
			Prop:      "LoadAvg",
			Event:     monitor.LoadIncreaseEvent,
			Predicate: monitor.LoadIncreasePredicateSrc(3),
		}},
	})
	if err != nil {
		return err
	}
	defer sp.Close()
	if err := sp.SetScriptStrategiesTable(fig7Strategy); err != nil {
		return err
	}
	if err := sp.Bind(ctx); err != nil {
		return err
	}
	ref, _ := sp.Current()
	fmt.Println("bound to", ref)

	// host-0 gets overloaded; the shipped predicate fires; the script
	// strategy re-selects... and finds nothing (all loaded), so it relaxes.
	w.Hosts[0].SetLoadAvg(5.0, 1.0, 1.0)
	if err := w.TickMonitors(); err != nil {
		return err
	}
	if _, err := sp.Invoke(ctx, "hello"); err != nil {
		return err
	}
	ref, _ = sp.Current()
	fmt.Println("after total overload: still on", ref, "(requirements relaxed to limit 6, per Fig. 7)")

	// Load rises past even the relaxed limit while host-1 frees up: now
	// the strategy migrates.
	w.Hosts[0].SetLoadAvg(7.0, 2.0, 2.0)
	w.Hosts[1].SetLoadAvg(0.4, 0.6, 0.6)
	if err := w.TickMonitors(); err != nil {
		return err
	}
	if _, err := sp.Invoke(ctx, "hello"); err != nil {
		return err
	}
	ref, _ = sp.Current()
	fmt.Println("after relaxed watch fired:  moved to", ref)
	fmt.Println()

	// Part 2: the quantitative comparison (E1).
	fmt.Println("— E1: policy comparison over a 12-minute simulated run —")
	table, _, err := experiment.LoadSharingTable(experiment.LoadShareConfig{
		Servers:        4,
		Clients:        8,
		Duration:       12 * time.Minute,
		Threshold:      3,
		BackgroundLoad: 6,
		BackgroundAt:   4 * time.Minute,
	})
	if err != nil {
		return err
	}
	fmt.Println(table.Render())
	return nil
}
