// Imageserver: the paper's second §V validation — the QuO example
// application, in which "the client requests images from the server and
// displays them on the screen". The photographs from the QuO distribution
// are not redistributable, so the servers generate deterministic PGM
// portraits procedurally (DESIGN.md §2.4); what matters is the paper's
// point: "Because the reconfiguration facilities are transparent to the
// applications' functional behavior, we could use the same adaptation code
// we used in the HelloWorld application."
//
// And indeed: the Watch, predicate, and strategy below are byte-for-byte
// the ones quickstart uses — only the functional interface (getImage vs
// hello) differs.
//
// Run:
//
//	go run ./examples/imageserver
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"autoadapt"
	"autoadapt/internal/monitor"
	"autoadapt/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "imageserver:", err)
		os.Exit(1)
	}
}

// renderPGM draws a deterministic 64x64 grayscale "portrait": concentric
// rings whose phase depends on the frame number and serving host, so the
// client can tell both apart.
func renderPGM(host int, frame int) []byte {
	const n = 64
	img := make([]byte, 0, n*n+32)
	img = append(img, []byte(fmt.Sprintf("P5 %d %d 255\n", n, n))...)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			dx, dy := x-n/2, y-n/2
			r := dx*dx + dy*dy
			v := byte((r/8 + frame*16 + host*64) % 256)
			img = append(img, v)
		}
	}
	return img
}

type dial struct{ v atomic.Value }

func newDial(x float64) *dial { d := &dial{}; d.v.Store(x); return d }
func (d *dial) set(x float64) { d.v.Store(x) }
func (d *dial) LoadAvg() (float64, float64, float64, error) {
	return d.v.Load().(float64), 0.4, 0.4, nil
}

// adaptationPolicy is the exact policy quickstart uses; the paper's claim
// is that it transfers unchanged across applications.
func adaptationPolicy() (constraint string, watch autoadapt.Watch, strategy autoadapt.Strategy) {
	constraint = "LoadAvg < 1 and LoadAvgIncreasing == no"
	watch = autoadapt.Watch{
		Prop:      "LoadAvg",
		Event:     monitor.LoadIncreaseEvent,
		Predicate: monitor.LoadIncreasePredicateSrc(1),
	}
	strategy = func(ctx context.Context, p *autoadapt.SmartProxy) error {
		ok, err := p.Select(ctx, constraint)
		if err == nil && ok {
			ref, _ := p.Current()
			fmt.Println("  [adaptation] image service moved to", ref)
		}
		return err
	}
	return constraint, watch, strategy
}

func run() error {
	ctx := context.Background()
	network := autoadapt.NewInprocNetwork()

	trader, err := autoadapt.StartTrader(autoadapt.TraderOptions{
		Network: network,
		Address: "trader",
		Types:   []autoadapt.ServiceType{{Name: "ImageService", Interface: "ImageServer"}},
	})
	if err != nil {
		return err
	}
	defer trader.Close()

	platform, err := autoadapt.Connect(network, trader.Ref, "client")
	if err != nil {
		return err
	}
	defer platform.Close()

	dials := []*dial{newDial(0.2), newDial(0.3)}
	for i, d := range dials {
		hostIdx := i
		ag, err := autoadapt.StartAgent(ctx, autoadapt.AgentOptions{
			Network:     network,
			Address:     fmt.Sprintf("imghost-%d", i+1),
			Lookup:      platform.Lookup,
			ServiceType: "ImageService",
			Servant: autoadapt.ServantFunc(func(op string, args []wire.Value) ([]wire.Value, error) {
				if op != "getImage" {
					return nil, fmt.Errorf("no such operation %q", op)
				}
				frame := int(args[0].Num())
				return []wire.Value{
					wire.Bytes(renderPGM(hostIdx, frame)),
					wire.String(fmt.Sprintf("imghost-%d", hostIdx+1)),
				}, nil
			}),
			LoadSource:    d,
			MonitorPeriod: 40 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		defer ag.Close(ctx)
	}

	constraint, watch, strategy := adaptationPolicy()
	proxy, err := platform.NewSmartProxy(autoadapt.ProxyOptions{
		ServiceType:      "ImageService",
		Constraint:       constraint,
		Preference:       "min LoadAvg",
		FallbackSortOnly: true,
		Watches:          []autoadapt.Watch{watch},
	})
	if err != nil {
		return err
	}
	defer proxy.Close()
	proxy.SetStrategy(monitor.LoadIncreaseEvent, strategy)
	if err := proxy.Bind(ctx); err != nil {
		return err
	}

	outDir, err := os.MkdirTemp("", "autoadapt-images-")
	if err != nil {
		return err
	}
	fmt.Println("fetching 8 frames; images land in", outDir)

	for frame := 0; frame < 8; frame++ {
		if frame == 3 {
			fmt.Println("  [load] imghost-1 becomes busy (load 4.0)")
			dials[0].set(4.0)
		}
		rs, err := proxy.Invoke(ctx, "getImage", wire.Int(frame))
		if err != nil {
			return err
		}
		img, _ := rs[0].AsBytes()
		servedBy := rs[1].Str()
		path := filepath.Join(outDir, fmt.Sprintf("frame-%02d.pgm", frame))
		if err := os.WriteFile(path, img, 0o644); err != nil {
			return err
		}
		fmt.Printf("frame %d: %4d bytes from %s\n", frame, len(img), servedBy)
		time.Sleep(50 * time.Millisecond)
	}

	st := proxy.Stats()
	fmt.Printf("\ndone: %d frames, %d switch(es) — same adaptation code as quickstart\n",
		st.Invocations, st.Switches)
	if st.Switches == 0 {
		return fmt.Errorf("expected the image service to migrate")
	}
	return nil
}
