package autoadapt

// Integration tests: the paper's Fig. 6 architecture assembled entirely
// through the public facade — trader daemon, service agents, client
// platform, smart proxy — over both transports, with IDL checking enabled.

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"autoadapt/internal/monitor"
	"autoadapt/internal/trading"
	"autoadapt/internal/wire"
)

type dialSource struct{ v atomic.Value }

func newDialSource(x float64) *dialSource {
	d := &dialSource{}
	d.v.Store(x)
	return d
}

func (d *dialSource) set(x float64) { d.v.Store(x) }

func (d *dialSource) LoadAvg() (float64, float64, float64, error) {
	return d.v.Load().(float64), 0.4, 0.4, nil
}

func deployment(t *testing.T, network Network, addr func(role string) string) (*TraderHandle, *Platform, []*dialSource, []*Agent) {
	t.Helper()
	trader, err := StartTrader(TraderOptions{
		Network:  network,
		Address:  addr("trader"),
		Types:    []ServiceType{{Name: "Hello", Props: []string{"LoadAvg", "LoadAvgIncreasing", "Host"}}},
		CheckIDL: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = trader.Close() })

	platform, err := Connect(network, trader.Ref, addr("client"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = platform.Close() })

	dials := []*dialSource{newDialSource(0.2), newDialSource(0.3)}
	var agents []*Agent
	for i, d := range dials {
		name := fmt.Sprintf("srv-%d", i)
		ag, err := StartAgent(context.Background(), AgentOptions{
			Network:       network,
			Address:       addr(name),
			Lookup:        platform.Lookup,
			ServiceType:   "Hello",
			Servant:       helloServant(name),
			LoadSource:    d,
			MonitorPeriod: 25 * time.Millisecond,
			StaticProps:   map[string]wire.Value{"Host": wire.String(name)},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = ag.Close(context.Background()) })
		agents = append(agents, ag)
	}
	return trader, platform, dials, agents
}

func helloServant(name string) Servant {
	return ServantFunc(func(op string, args []wire.Value) ([]wire.Value, error) {
		if op != "hello" {
			return nil, fmt.Errorf("no such operation %q", op)
		}
		return []wire.Value{wire.String(name)}, nil
	})
}

func runFullStack(t *testing.T, network Network, addr func(string) string) {
	t.Helper()
	_, platform, dials, agents := deployment(t, network, addr)
	ctx := context.Background()

	proxy, err := platform.NewSmartProxy(ProxyOptions{
		ServiceType:      "Hello",
		Constraint:       "LoadAvg < 1 and LoadAvgIncreasing == no",
		Preference:       "min LoadAvg",
		FallbackSortOnly: true,
		Watches: []Watch{{
			Prop:      "LoadAvg",
			Event:     monitor.LoadIncreaseEvent,
			Predicate: monitor.LoadIncreasePredicateSrc(1),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)
	proxy.SetStrategy(monitor.LoadIncreaseEvent, func(ctx context.Context, p *SmartProxy) error {
		_, err := p.Select(ctx, "LoadAvg < 1 and LoadAvgIncreasing == no")
		return err
	})
	if err := proxy.Bind(ctx); err != nil {
		t.Fatal(err)
	}
	rs, err := proxy.Invoke(ctx, "hello")
	if err != nil || rs[0].Str() != "srv-0" {
		t.Fatalf("initial call = %v, %v", rs, err)
	}

	// Spike srv-0; the agent's timer-driven monitor notices and notifies.
	dials[0].set(5.0)
	deadline := time.Now().Add(10 * time.Second)
	for {
		rs, err := proxy.Invoke(ctx, "hello")
		if err != nil {
			t.Fatal(err)
		}
		if rs[0].Str() == "srv-1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("proxy never adapted to the load spike")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := proxy.Stats(); st.Switches == 0 {
		t.Fatalf("stats = %+v", st)
	}
	_ = agents
}

func TestFullStackOverTCP(t *testing.T) {
	runFullStack(t, TCP(), func(string) string { return "127.0.0.1:0" })
}

func TestFullStackInproc(t *testing.T) {
	n := NewInprocNetwork()
	runFullStack(t, n, func(role string) string { return "it-" + role })
}

func TestTraderIDLCheckRejectsBadCalls(t *testing.T) {
	n := NewInprocNetwork()
	trader, err := StartTrader(TraderOptions{
		Network:  n,
		Address:  "idl-trader",
		Types:    []ServiceType{{Name: "S"}},
		CheckIDL: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer trader.Close()
	platform, err := Connect(n, trader.Ref, "idl-client")
	if err != nil {
		t.Fatal(err)
	}
	defer platform.Close()
	// "query" with a numeric service type violates the Trader IDL.
	_, err = platform.Client.Invoke(context.Background(), trader.Ref, "query", wire.Number(42))
	if err == nil {
		t.Fatal("IDL-checked trader accepted a numeric service type")
	}
	// A well-typed call passes.
	if _, err := platform.Lookup.Query(context.Background(), "S", "", "", 0); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	// listTypes (inherited through Trader : Lookup, Register) works.
	rs, err := platform.Client.Invoke(context.Background(), trader.Ref, "listTypes")
	if err != nil {
		t.Fatalf("listTypes rejected: %v", err)
	}
	if tb, ok := rs[0].AsTable(); !ok || tb.Len() != 1 {
		t.Fatalf("listTypes = %v", rs[0])
	}
}

func TestPlatformValidation(t *testing.T) {
	if _, err := StartTrader(TraderOptions{}); err == nil {
		t.Fatal("StartTrader without network succeeded")
	}
	if _, err := Connect(nil, ObjRef{}, "x"); err == nil {
		t.Fatal("Connect without network succeeded")
	}
	n := NewInprocNetwork()
	if _, err := n.Listen("taken"); err != nil {
		t.Fatal(err)
	}
	if _, err := Connect(n, ObjRef{}, "taken"); err == nil {
		t.Fatal("Connect on a taken address succeeded")
	}
}

func TestAgentOfferVisibleThroughFacadeLookup(t *testing.T) {
	n := NewInprocNetwork()
	_, platform, _, agents := deployment(t, n, func(role string) string { return "vis-" + role })
	rs, err := platform.Lookup.Query(context.Background(), "Hello", "exist Host", "min LoadAvg", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("query matched %d offers, want 2", len(rs))
	}
	// Offers carry the monitors for watch installation.
	if _, ok := rs[0].Offer.MonitorFor("LoadAvg"); !ok {
		t.Fatal("offer lacks its LoadAvg monitor reference")
	}
	if rs[0].Offer.Ref != agents[0].ServiceRef() && rs[0].Offer.Ref != agents[1].ServiceRef() {
		t.Fatalf("offer ref %v does not match any agent", rs[0].Offer.Ref)
	}
}

// TestRemoteDefineAspectThroughFacade reproduces the paper's run-time
// extensibility end to end: a client ships a brand-new aspect to a running
// agent's monitor and immediately uses it as a trader constraint property.
func TestRemoteDefineAspectThroughFacade(t *testing.T) {
	n := NewInprocNetwork()
	_, platform, _, agents := deployment(t, n, func(role string) string { return "ext-" + role })
	ctx := context.Background()

	monRef := agents[0].MonitorRef()
	// Ship a new aspect: the 15-minute average.
	_, err := platform.Client.Invoke(ctx, monRef, "defineAspect",
		wire.String("Load15"), wire.String(`function(self, v, mon) return v[3] end`))
	if err != nil {
		t.Fatal(err)
	}
	if err := agents[0].Monitor().Tick(); err != nil {
		t.Fatal(err)
	}
	rs, err := platform.Client.Invoke(ctx, monRef, "getAspectValue", wire.String("Load15"))
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Num() != 0.4 {
		t.Fatalf("shipped aspect value = %v, want 0.4", rs[0])
	}

	// And the trader can serve it as a dynamic property at query time.
	id, err := platform.Lookup.Export(ctx, "Hello", agents[0].ServiceRef(), map[string]PropValue{
		"Load15": {Dynamic: monRef, Aspect: "Load15"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := platform.Lookup.Withdraw(ctx, id); err != nil {
			t.Errorf("withdraw: %v", err)
		}
	}()
	qr, err := platform.Lookup.Query(ctx, "Hello", "Load15 < 1", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(qr) == 0 {
		t.Fatal("query against the shipped aspect matched nothing")
	}
}

// TestFig6MessageFlow counts the architecture's message paths end to end
// on one adaptation cycle, asserting every arrow of Fig. 6 is exercised:
// export (agent→trader), query (client→trader), dynamic property resolve
// (trader→monitor), attach (client→monitor), notify (monitor→client),
// request (client→server).
func TestFig6MessageFlow(t *testing.T) {
	n := NewInprocNetwork()
	_, platform, dials, agents := deployment(t, n, func(role string) string { return "f6-" + role })
	ctx := context.Background()

	proxy, err := platform.NewSmartProxy(ProxyOptions{
		ServiceType: "Hello",
		Constraint:  "LoadAvg < 1",
		Preference:  "min LoadAvg",
		Watches: []Watch{{
			Prop:      "LoadAvg",
			Event:     monitor.LoadIncreaseEvent,
			Predicate: monitor.LoadIncreasePredicateSrc(1),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	proxy.SetStrategy(monitor.LoadIncreaseEvent, func(ctx context.Context, p *SmartProxy) error {
		_, err := p.Select(ctx, "LoadAvg < 1")
		return err
	})

	if err := proxy.Bind(ctx); err != nil { // query + attach
		t.Fatal(err)
	}
	if agents[0].Monitor().ObserverCount() != 1 { // attach happened
		t.Fatal("observer not attached")
	}
	if _, err := proxy.Invoke(ctx, "hello"); err != nil { // request
		t.Fatal(err)
	}
	dials[0].set(9)
	deadline := time.Now().Add(10 * time.Second)
	for len(proxy.PendingEvents()) == 0 { // notify happened
		if time.Now().After(deadline) {
			t.Fatal("notification never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := proxy.Invoke(ctx, "hello"); err != nil { // adapt + request
		t.Fatal(err)
	}
	if cur, _ := proxy.Current(); cur != agents[1].ServiceRef() {
		t.Fatalf("adaptation landed on %v", cur)
	}
	// The trading arrows: the agents exported, the proxy queried.
	if got := proxy.Stats().Selections; got < 2 {
		t.Fatalf("selections = %d, want >= 2", got)
	}
	_ = trading.DefaultObjectKey // document the well-known key this flow used
}
