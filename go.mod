module autoadapt

go 1.22
