package autoadapt

// Every example must build and run to completion (each example exits
// non-zero if its adaptation story did not play out, so "ran" means
// "adapted").

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

func TestExamplesRunToCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping example runs")
	}
	cases := []struct {
		name string
		want []string // substrings that must appear on stdout
	}{
		{"quickstart", []string{"[adaptation] switched to", "1 server switch(es)"}},
		{"imageserver", []string{"image service moved to", "same adaptation code as quickstart"}},
		{"loadsharing", []string{"requirements relaxed to limit 6", "moved to", "adaptive"}},
		{"contextaware", []string{"user entered lab", "user entered auditorium", "3 display switches"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./examples/"+tc.name)
			done := make(chan struct{})
			var out []byte
			var err error
			go func() {
				out, err = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(120 * time.Second):
				_ = cmd.Process.Kill()
				t.Fatalf("example %s hung", tc.name)
			}
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", tc.name, err, out)
			}
			for _, want := range tc.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("example %s output missing %q:\n%s", tc.name, want, out)
				}
			}
		})
	}
}
