// Package autoadapt is the top-level facade of the infrastructure for
// distributed auto-adaptive applications reproduced from "Dynamic Support
// for Distributed Auto-Adaptive Applications" (de Moura, Ururahy,
// Cerqueira, Rodriguez — ICDCS 2002 workshops).
//
// The building blocks live in the internal packages (see DESIGN.md for the
// full inventory):
//
//	internal/orb      — the object request broker (dynamic invocation,
//	                    dynamic servants, object references, oneway)
//	internal/script   — AdaptScript, the embedded interpreted language
//	internal/idl      — IDL-subset parser + interface repository
//	internal/trading  — trading service with dynamic properties
//	internal/monitor  — extensible monitors (aspects, event observers)
//	internal/core     — the smart proxy (the paper's contribution)
//	internal/agent    — service agents
//	internal/hostenv  — simulated hosts
//
// This package bundles them into the two roles a deployment has:
//
//	Trader side:  StartTrader runs a trading service daemon.
//	Client side:  Connect yields a Platform, from which applications
//	              create smart proxies bound to a service type.
//	Server side:  agent.Start (re-exported here as StartAgent) announces
//	              a servant with live load monitoring.
package autoadapt

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"autoadapt/internal/agent"
	"autoadapt/internal/baseline"
	"autoadapt/internal/core"
	"autoadapt/internal/idl"
	"autoadapt/internal/metrics"
	"autoadapt/internal/monitor"
	"autoadapt/internal/orb"
	"autoadapt/internal/rebind"
	"autoadapt/internal/script"
	"autoadapt/internal/trading"
	"autoadapt/internal/trading/shard"
	"autoadapt/internal/wire"
)

// Re-exported types: the public vocabulary of the facade.
type (
	// Value is a dynamically typed value exchanged through the ORB.
	Value = wire.Value
	// ObjRef names a remote object.
	ObjRef = wire.ObjRef
	// Network is a transport (TCP or in-process).
	Network = orb.Network
	// Servant is the dynamic skeleton interface.
	Servant = orb.Servant
	// ServantFunc adapts a function to Servant.
	ServantFunc = orb.ServantFunc
	// SmartProxy is the paper's smart proxy.
	SmartProxy = core.SmartProxy
	// ProxyOptions configures a smart proxy.
	ProxyOptions = core.Options
	// Watch declares an event subscription installed on selected servers.
	Watch = core.Watch
	// Strategy is an adaptation strategy.
	Strategy = core.Strategy
	// AgentOptions configures a service agent.
	AgentOptions = agent.Options
	// Agent is a running service agent.
	Agent = agent.Agent
	// ServiceType describes a traded service type.
	ServiceType = trading.ServiceType
	// PropValue is an offer property (static or dynamic).
	PropValue = trading.PropValue
	// QueryResult is one trader match.
	QueryResult = trading.QueryResult
	// Rebinder is a self-healing service binding that re-queries the
	// trader when its bound server dies (see internal/rebind).
	Rebinder = rebind.Rebinder
	// MetricsRegistry collects counters, gauges, and latency histograms
	// from every instrumented layer (see internal/metrics).
	MetricsRegistry = metrics.Registry
	// ScriptEngine selects the AdaptScript execution engine on
	// ProxyOptions.ScriptEngine / AgentOptions.ScriptEngine: the bytecode
	// VM (default) or the tree-walking reference interpreter.
	ScriptEngine = script.Engine
)

// AdaptScript execution engines (see internal/script): EngineVM compiles
// resolved chunks to register bytecode on first call; EngineTreeWalk is the
// direct AST interpreter kept as the semantic reference.
const (
	EngineVM       = script.EngineVM
	EngineTreeWalk = script.EngineTreeWalk
)

// ParseScriptEngine maps a command-line engine name ("vm", "treewalk", or
// empty for the default) to a ScriptEngine.
func ParseScriptEngine(s string) (ScriptEngine, error) { return script.ParseEngine(s) }

// TCP is the production transport.
func TCP() Network { return orb.TCPNetwork{} }

// NewInprocNetwork returns an in-process transport for tests and
// single-process deployments.
func NewInprocNetwork() *orb.InprocNetwork { return orb.NewInprocNetwork() }

// NewMetricsRegistry returns an empty metrics registry to hand to
// TraderOptions.Metrics / ShardedTraderOptions.Metrics.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// TraderOptions configures StartTrader.
type TraderOptions struct {
	// Network and Address to listen on. Required.
	Network Network
	Address string
	// Types registered at start.
	Types []ServiceType
	// CheckIDL, when true, loads the monitor/trader IDL into an interface
	// repository and type-checks inbound trader calls.
	CheckIDL bool
	// LeaseTTL, when positive, makes exported offers leases: an exporter
	// must renew within the TTL or the offer stops matching and is
	// eventually reaped. 0 (the default) keeps offers alive forever.
	LeaseTTL time.Duration
	// ReapInterval is how often expired offers are garbage-collected when
	// LeaseTTL is set. Default LeaseTTL/3.
	ReapInterval time.Duration
	// MaxConcurrent bounds the trader server's dispatch pool
	// (orb.ServerOptions.MaxConcurrent): 0 uses the ORB default, negative
	// restores the unbounded legacy spill.
	MaxConcurrent int
	// ResolveTimeout caps the dynamic-property resolution phase of each
	// query so a wedged monitor cannot stall the trader (0 = only the
	// caller's deadline applies).
	ResolveTimeout time.Duration
	// Metrics, when non-nil, instruments the whole daemon — the trader
	// (query latency, lease churn, quarantine), its ORB server and resolver
	// client — and exposes the registry's text through the trader's
	// `metrics` operation (`adaptctl metrics`). Nil disables
	// instrumentation.
	Metrics *metrics.Registry
	// Logger for connection diagnostics.
	Logger *log.Logger
}

// TraderHandle is a running trading service.
type TraderHandle struct {
	Trader *trading.Trader
	Ref    ObjRef

	server     *orb.Server
	client     *orb.Client
	stopReaper func()
}

// StartTrader runs a trading service on the given transport. Dynamic
// properties are resolved through a client on the same transport.
func StartTrader(opts TraderOptions) (*TraderHandle, error) {
	if opts.Network == nil {
		return nil, errors.New("autoadapt: TraderOptions.Network is required")
	}
	client := orb.NewClientOpts(orb.ClientOptions{
		Networks: []orb.Network{opts.Network}, Metrics: opts.Metrics,
	})
	tr := trading.NewTrader(trading.ClientResolver{Client: client})
	tr.SetResolveTimeout(opts.ResolveTimeout)
	tr.SetMetrics(opts.Metrics)
	for _, st := range opts.Types {
		tr.AddType(st)
	}
	var repo *idl.Repository
	if opts.CheckIDL {
		repo = idl.NewRepository()
		if err := repo.LoadIDL(monitor.IDL); err != nil {
			_ = client.Close()
			return nil, fmt.Errorf("autoadapt: load monitor IDL: %w", err)
		}
		if err := repo.LoadIDL(trading.InterfaceIDL); err != nil {
			_ = client.Close()
			return nil, fmt.Errorf("autoadapt: load trader IDL: %w", err)
		}
	}
	srv, err := orb.NewServer(orb.ServerOptions{
		Network: opts.Network, Address: opts.Address, Repo: repo, Logger: opts.Logger,
		MaxConcurrent: opts.MaxConcurrent, Metrics: opts.Metrics,
	})
	if err != nil {
		_ = client.Close()
		return nil, err
	}
	iface := ""
	if opts.CheckIDL {
		iface = "Trader"
	}
	servant := trading.NewServant(tr)
	if opts.Metrics != nil {
		servant.WithMetricsText(opts.Metrics.Text)
	}
	ref := srv.Register(trading.DefaultObjectKey, iface, servant)
	h := &TraderHandle{Trader: tr, Ref: ref, server: srv, client: client}
	if opts.LeaseTTL > 0 {
		tr.SetLeaseTTL(opts.LeaseTTL)
		interval := opts.ReapInterval
		if interval <= 0 {
			interval = opts.LeaseTTL / 3
		}
		h.stopReaper = tr.StartReaper(interval)
	}
	return h, nil
}

// Endpoint returns the trader's endpoint string.
func (t *TraderHandle) Endpoint() string { return t.server.Endpoint() }

// Close stops the trader (and its offer reaper, when leasing is on).
func (t *TraderHandle) Close() error {
	if t.stopReaper != nil {
		t.stopReaper()
	}
	err := t.server.Close()
	if cerr := t.client.Close(); err == nil {
		err = cerr
	}
	return err
}

// ShardedTraderOptions configures StartShardedTrader.
type ShardedTraderOptions struct {
	// Network and Address to listen on. Required.
	Network Network
	Address string
	// Shards is how many trader shards the offer space is partitioned
	// across. Default 4.
	Shards int
	// Standbys is the pool of spare traders the shard manager promotes to
	// read replicas of hot shards. Default 0 (no dynamic replication).
	Standbys int
	// Types registered at start (broadcast to every shard and standby).
	Types []ServiceType
	// CheckIDL type-checks inbound trader calls against the IDL.
	CheckIDL bool
	// LeaseTTL / ReapInterval: as in TraderOptions, applied per shard.
	// The router's ownership-handoff grace window is derived from
	// LeaseTTL so re-exports complete before an old owner is dropped.
	LeaseTTL     time.Duration
	ReapInterval time.Duration
	// HotRPS is the per-shard query rate above which the manager attaches
	// a read replica (see shard.ManagerOptions). Default 100.
	HotRPS float64
	// MaxConcurrent and ResolveTimeout: as in TraderOptions, applied to
	// the ensemble's server and to every shard respectively.
	MaxConcurrent  int
	ResolveTimeout time.Duration
	// Metrics, when non-nil, instruments the ensemble: every shard and
	// standby shares the registry (counters aggregate across shards; the
	// trading_offers/queries/exports gauges are re-registered as
	// primary-shard sums), the shard manager exports its shard_manager_*
	// gauges, and the well-known servant answers the `metrics` operation
	// with the registry's text. Nil disables instrumentation.
	Metrics *metrics.Registry
	// Logger for connection and rebalancing diagnostics.
	Logger *log.Logger
}

// ShardedTraderHandle is a running sharded trading service: one process,
// N in-process trader shards behind the routing client, registered at the
// same well-known object key as a single trader.
type ShardedTraderHandle struct {
	// Router is the shard routing client (a trading.Directory).
	Router *shard.Router
	// Manager is the replica control loop (nil when Standbys is 0).
	Manager *shard.Manager
	// Ref is the wire reference clients bind to — indistinguishable from
	// a single trader's.
	Ref ObjRef

	server   *orb.Server
	client   *orb.Client
	stoppers []func()
}

// StartShardedTrader partitions the offer space across opts.Shards
// in-process traders behind a shard.Router and serves the whole ensemble
// at the well-known trader key. Clients, agents, and smart proxies need
// no changes: Export/Query/Renew route to the owning shard server-side.
func StartShardedTrader(opts ShardedTraderOptions) (*ShardedTraderHandle, error) {
	if opts.Network == nil {
		return nil, errors.New("autoadapt: ShardedTraderOptions.Network is required")
	}
	if opts.Shards <= 0 {
		opts.Shards = 4
	}
	client := orb.NewClientOpts(orb.ClientOptions{
		Networks: []orb.Network{opts.Network}, Metrics: opts.Metrics,
	})
	h := &ShardedTraderHandle{client: client}
	fail := func(err error) (*ShardedTraderHandle, error) {
		_ = h.Close()
		return nil, err
	}

	var allTraders []*trading.Trader
	newShard := func() *trading.Trader {
		tr := trading.NewTrader(trading.ClientResolver{Client: client})
		tr.SetResolveTimeout(opts.ResolveTimeout)
		tr.SetMetrics(opts.Metrics)
		if opts.LeaseTTL > 0 {
			tr.SetLeaseTTL(opts.LeaseTTL)
			interval := opts.ReapInterval
			if interval <= 0 {
				interval = opts.LeaseTTL / 3
			}
			h.stoppers = append(h.stoppers, tr.StartReaper(interval))
		}
		allTraders = append(allTraders, tr)
		return tr
	}
	dirs := make([]trading.Directory, opts.Shards)
	primaries := make([]*trading.Trader, opts.Shards)
	for i := range dirs {
		primaries[i] = newShard()
		dirs[i] = trading.Local{T: primaries[i]}
	}
	grace := 30 * time.Second
	if opts.LeaseTTL > 0 {
		grace = 2 * opts.LeaseTTL
	}
	router, err := shard.NewRouter(shard.Options{
		Shards:       dirs,
		HandoffGrace: grace,
		Logger:       opts.Logger,
	})
	if err != nil {
		return fail(err)
	}
	h.Router = router
	ctx := context.Background()
	for _, st := range opts.Types {
		if err := router.AddType(ctx, st); err != nil {
			return fail(fmt.Errorf("autoadapt: register type %s: %w", st.Name, err))
		}
	}

	if opts.Standbys > 0 {
		standbys := make([]trading.Directory, opts.Standbys)
		for i := range standbys {
			standbys[i] = trading.Local{T: newShard()}
		}
		mgr, err := shard.NewManager(shard.ManagerOptions{
			Router:   router,
			Standbys: standbys,
			HotRPS:   opts.HotRPS,
			Logger:   opts.Logger,
			Metrics:  opts.Metrics,
		})
		if err != nil {
			return fail(err)
		}
		h.Manager = mgr
		h.stoppers = append(h.stoppers, mgr.Start())
	}

	if reg := opts.Metrics; reg != nil {
		// Every shard's (and standby's) SetMetrics registered per-trader
		// gauges under the same names, each seeing only its own slice of
		// the ensemble; replace them with ensemble-wide sums. This must
		// happen after the last newShard() call — GaugeFunc is last-wins
		// on a duplicate name, so a later per-trader registration would
		// silently shadow these. Offers and exports sum the primaries
		// only (replicas hold copies of the same offers, so counting
		// them would double count); queries sum every trader, because a
		// promoted read replica serves real queries the primary never
		// sees.
		reg.GaugeFunc("trading_offers", func() float64 {
			n := 0
			for _, tr := range primaries {
				n += tr.OfferCount()
			}
			return float64(n)
		})
		reg.GaugeFunc("trading_queries", func() float64 {
			var n int64
			for _, tr := range allTraders {
				n += tr.Stats().Queries
			}
			return float64(n)
		})
		reg.GaugeFunc("trading_exports", func() float64 {
			var n int64
			for _, tr := range primaries {
				n += tr.Stats().Exports
			}
			return float64(n)
		})
	}

	var repo *idl.Repository
	if opts.CheckIDL {
		repo = idl.NewRepository()
		if err := repo.LoadIDL(monitor.IDL); err != nil {
			return fail(fmt.Errorf("autoadapt: load monitor IDL: %w", err))
		}
		if err := repo.LoadIDL(trading.InterfaceIDL); err != nil {
			return fail(fmt.Errorf("autoadapt: load trader IDL: %w", err))
		}
	}
	srv, err := orb.NewServer(orb.ServerOptions{
		Network: opts.Network, Address: opts.Address, Repo: repo, Logger: opts.Logger,
		MaxConcurrent: opts.MaxConcurrent, Metrics: opts.Metrics,
	})
	if err != nil {
		return fail(err)
	}
	h.server = srv
	iface := ""
	if opts.CheckIDL {
		iface = "Trader"
	}
	servant := shard.NewServant(router, h.Manager)
	if opts.Metrics != nil {
		servant.WithMetricsText(opts.Metrics.Text)
	}
	h.Ref = srv.Register(trading.DefaultObjectKey, iface, servant)
	return h, nil
}

// Endpoint returns the sharded trader's endpoint string.
func (t *ShardedTraderHandle) Endpoint() string { return t.server.Endpoint() }

// Close stops the server, the replica manager, and every shard reaper.
func (t *ShardedTraderHandle) Close() error {
	for _, stop := range t.stoppers {
		stop()
	}
	var err error
	if t.server != nil {
		err = t.server.Close()
	}
	if cerr := t.client.Close(); err == nil {
		err = cerr
	}
	return err
}

// Platform is the client-side runtime: an ORB client, a lookup bound to a
// trader, and a local server hosting observer callbacks.
type Platform struct {
	Client *orb.Client
	Lookup *trading.Lookup
	// ObserverServer hosts EventObserver callbacks for smart proxies.
	ObserverServer *orb.Server
}

// Connect builds a Platform: it dials nothing eagerly, binds the lookup to
// traderRef, and starts a local callback server on callbackAddr.
func Connect(network Network, traderRef ObjRef, callbackAddr string) (*Platform, error) {
	if network == nil {
		return nil, errors.New("autoadapt: network is required")
	}
	client := orb.NewClient(network)
	srv, err := orb.NewServer(orb.ServerOptions{Network: network, Address: callbackAddr})
	if err != nil {
		_ = client.Close()
		return nil, err
	}
	return &Platform{
		Client:         client,
		Lookup:         trading.NewLookup(client, traderRef),
		ObserverServer: srv,
	}, nil
}

// NewSmartProxy creates a smart proxy wired to the platform. The caller
// sets ServiceType/Constraint/Preference/Watches on opts; Client, Lookup
// and ObserverServer are filled in.
func (p *Platform) NewSmartProxy(opts ProxyOptions) (*SmartProxy, error) {
	opts.Client = p.Client
	opts.Lookup = p.Lookup
	if opts.ObserverServer == nil {
		opts.ObserverServer = p.ObserverServer
	}
	return core.New(opts)
}

// NewRebinder creates a self-healing binding for the given service type:
// invocations go to the best matching offer and, when that server dies,
// automatically rebind through the trader (whose leases have pruned dead
// offers). preference defaults to "min LoadAvg".
func (p *Platform) NewRebinder(serviceType, constraint, preference string) *Rebinder {
	return baseline.NewRebinding(p.Client, p.Lookup, serviceType, constraint, preference)
}

// Close tears the platform down.
func (p *Platform) Close() error {
	err := p.Client.Close()
	if serr := p.ObserverServer.Close(); err == nil {
		err = serr
	}
	return err
}

// StartAgent announces a servant through a service agent (see
// internal/agent for the full option set).
func StartAgent(ctx context.Context, opts AgentOptions) (*Agent, error) {
	return agent.Start(ctx, opts)
}
