package autoadapt

// Benchmark harness: one bench per experiment in DESIGN.md §3.
//
//	E1/E2/E3/E6 — scenario experiments; the same drivers cmd/benchall runs,
//	              at reduced scale so `go test -bench` stays quick.
//	E4          — invocation-path ladder (direct Go → inproc ORB → TCP ORB
//	              → TCP+IDL check → smart proxy).
//	E5          — trader query cost vs offer count and dynamic-property
//	              fraction.
//	E7          — AdaptScript overhead: compile and run the paper's shipped
//	              code vs an equivalent native Go implementation.
//	E8          — the same strategy reused across two service types.
//
// Measured outputs are recorded against the paper's claims in
// EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"autoadapt/internal/core"
	"autoadapt/internal/experiment"
	"autoadapt/internal/idl"
	"autoadapt/internal/monitor"
	"autoadapt/internal/orb"
	"autoadapt/internal/script"
	"autoadapt/internal/trading"
	"autoadapt/internal/wire"
)

// ---- E1 ----

func benchLoadSharing(b *testing.B, policy string) {
	cfg := experiment.LoadShareConfig{
		Servers:        4,
		Clients:        6,
		Duration:       6 * time.Minute,
		Threshold:      2,
		BackgroundLoad: 6,
		BackgroundAt:   2 * time.Minute,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiment.LoadSharing(cfg, policy)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanRespSec*1000, "resp-ms")
		b.ReportMetric(r.ImbalanceCoV, "imbalance-CoV")
	}
}

func BenchmarkE1LoadSharingAdaptive(b *testing.B)   { benchLoadSharing(b, experiment.PolicyAdaptive) }
func BenchmarkE1LoadSharingStatic(b *testing.B)     { benchLoadSharing(b, experiment.PolicyStatic) }
func BenchmarkE1LoadSharingRoundRobin(b *testing.B) { benchLoadSharing(b, experiment.PolicyRoundRobin) }
func BenchmarkE1LoadSharingRandom(b *testing.B)     { benchLoadSharing(b, experiment.PolicyRandom) }

// ---- E2 ----

func BenchmarkE2EventVsPolling(b *testing.B) {
	cfg := experiment.EventVsPollingConfig{Duration: 20 * time.Minute}
	for i := 0; i < b.N; i++ {
		rs, err := experiment.EventVsPolling(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			if r.Mode == "event" {
				b.ReportMetric(float64(r.Interactions), "event-msgs")
			}
			if r.Mode == "poll-5s" {
				b.ReportMetric(float64(r.Interactions), "poll5s-msgs")
			}
		}
	}
}

// ---- E3 ----

func BenchmarkE3PostponedHandling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiment.PostponedVsImmediate(experiment.PostponeConfig{Events: 10})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			if r.Mode == "immediate" {
				b.ReportMetric(float64(r.OverlappedReconfigs), "immediate-overlaps")
			}
		}
	}
}

// ---- E4: invocation path ladder ----

func echoServantBench() orb.Servant {
	return orb.ServantFunc(func(op string, args []wire.Value) ([]wire.Value, error) {
		return args, nil
	})
}

func BenchmarkE4DirectGoCall(b *testing.B) {
	sv := echoServantBench()
	arg := []wire.Value{wire.Int(42)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sv.Invoke("echo", arg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4CollocatedFastPath(b *testing.B) {
	n := orb.NewInprocNetwork()
	srv, err := orb.NewServer(orb.ServerOptions{Network: n, Address: "b4-local"})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ref := srv.Register("echo", "", echoServantBench())
	client := orb.NewClient(n)
	defer client.Close()
	client.RegisterLocal(srv)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := client.Invoke(ctx, ref, "echo", wire.Int(42)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4InprocORBCall(b *testing.B) {
	n := orb.NewInprocNetwork()
	srv, err := orb.NewServer(orb.ServerOptions{Network: n, Address: "b4-inproc"})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ref := srv.Register("echo", "", echoServantBench())
	client := orb.NewClient(n)
	defer client.Close()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := client.Invoke(ctx, ref, "echo", wire.Int(42)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTCP(b *testing.B, repo *idl.Repository, iface string) {
	srv, err := orb.NewServer(orb.ServerOptions{Network: orb.TCPNetwork{}, Address: "127.0.0.1:0", Repo: repo})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ref := srv.Register("echo", iface, echoServantBench())
	client := orb.NewClient(orb.TCPNetwork{})
	defer client.Close()
	ctx := context.Background()
	// Warm the connection.
	if _, err := client.Invoke(ctx, ref, "echo", wire.Int(1)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Invoke(ctx, ref, "echo", wire.Int(42)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4TCPORBCall(b *testing.B) { benchTCP(b, nil, "") }

func BenchmarkE4TCPORBCallTypeChecked(b *testing.B) {
	repo := idl.NewRepository()
	if err := repo.LoadIDL(`interface Echo { any echo(in any v); };`); err != nil {
		b.Fatal(err)
	}
	benchTCP(b, repo, "Echo")
}

func BenchmarkE4SmartProxyCall(b *testing.B) {
	n := orb.NewInprocNetwork()
	srv, err := orb.NewServer(orb.ServerOptions{Network: n, Address: "b4-proxy"})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ref := srv.Register("echo", "", echoServantBench())
	client := orb.NewClient(n)
	defer client.Close()
	sp, err := core.New(core.Options{Client: client})
	if err != nil {
		b.Fatal(err)
	}
	defer sp.Close()
	ctx := context.Background()
	if err := sp.BindTo(ctx, trading.QueryResult{Offer: trading.Offer{ID: "offer-1", Ref: ref}}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sp.Invoke(ctx, "echo", wire.Int(42)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E5: trader query cost ----

type benchResolver struct{ loads map[string]float64 }

func (r benchResolver) ResolveDynamic(_ context.Context, ref wire.ObjRef, aspect string) (wire.Value, error) {
	if aspect == "Increasing" {
		return wire.String("no"), nil
	}
	return wire.Number(r.loads[ref.String()]), nil
}

func benchTrader(b *testing.B, offers int, dynamicFrac float64) {
	res := benchResolver{loads: map[string]float64{}}
	tr := trading.NewTrader(res)
	tr.AddType(trading.ServiceType{Name: "S"})
	for i := 0; i < offers; i++ {
		props := map[string]trading.PropValue{}
		mon := wire.ObjRef{Endpoint: fmt.Sprintf("inproc|h-%d", i), Key: "m"}
		res.loads[mon.String()] = float64(i % 10)
		if float64(i) < dynamicFrac*float64(offers) {
			props["LoadAvg"] = trading.PropValue{Dynamic: mon}
			props["LoadAvgIncreasing"] = trading.PropValue{Dynamic: mon, Aspect: "Increasing"}
		} else {
			props["LoadAvg"] = trading.PropValue{Static: wire.Number(float64(i % 10))}
			props["LoadAvgIncreasing"] = trading.PropValue{Static: wire.String("no")}
		}
		if _, err := tr.Export("S", wire.ObjRef{Endpoint: fmt.Sprintf("inproc|h-%d", i), Key: "svc"}, props); err != nil {
			b.Fatal(err)
		}
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := tr.Query(ctx, "S", "LoadAvg < 5 and LoadAvgIncreasing == no", "min LoadAvg", 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rs) == 0 {
			b.Fatal("no match")
		}
	}
}

func BenchmarkE5TraderQuery10Static(b *testing.B)    { benchTrader(b, 10, 0) }
func BenchmarkE5TraderQuery10Dynamic(b *testing.B)   { benchTrader(b, 10, 1) }
func BenchmarkE5TraderQuery100Static(b *testing.B)   { benchTrader(b, 100, 0) }
func BenchmarkE5TraderQuery100Half(b *testing.B)     { benchTrader(b, 100, 0.5) }
func BenchmarkE5TraderQuery100Dynamic(b *testing.B)  { benchTrader(b, 100, 1) }
func BenchmarkE5TraderQuery1000Static(b *testing.B)  { benchTrader(b, 1000, 0) }
func BenchmarkE5TraderQuery1000Dynamic(b *testing.B) { benchTrader(b, 1000, 1) }

// ---- E10: remote dynamic resolution over TCP-served monitors ----

// e10MonServiceTime simulates the time a monitor spends servicing
// getValue — sampling its sensor plus LAN round-trip time. Localhost TCP
// collapses network latency to syscall cost, so without this the benchmark
// would measure a degenerate zero-RTT network no deployment has.
const e10MonServiceTime = 200 * time.Microsecond

// benchRemoteQuery measures end-to-end trader query latency when every
// offer's LoadAvg is a dynamic property served by a monitor servant behind
// a real TCP ORB endpoint, as the offer count grows. Monitors are spread
// across `hosts` TCP servers to model a cluster of monitor hosts. workers
// = 1 reproduces the seed's serial resolution loop; workers = 0 keeps the
// trader's default bounded fan-out.
func benchRemoteQuery(b *testing.B, offers, hosts, workers int) {
	var servers []*orb.Server
	for h := 0; h < hosts; h++ {
		srv, err := orb.NewServer(orb.ServerOptions{Network: orb.TCPNetwork{}, Address: "127.0.0.1:0"})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		servers = append(servers, srv)
	}
	client := orb.NewClient(orb.TCPNetwork{})
	defer client.Close()
	tr := trading.NewTrader(trading.ClientResolver{Client: client})
	if workers > 0 {
		tr.SetResolveParallel(workers)
	}
	tr.AddType(trading.ServiceType{Name: "S"})
	for i := 0; i < offers; i++ {
		load := float64(i % 10)
		monRef := servers[i%hosts].Register(fmt.Sprintf("mon-%d", i), "", orb.ServantFunc(
			func(op string, args []wire.Value) ([]wire.Value, error) {
				if op != "getValue" {
					return nil, fmt.Errorf("monitor: no such operation %q", op)
				}
				time.Sleep(e10MonServiceTime)
				return []wire.Value{wire.Number(load)}, nil
			}))
		props := map[string]trading.PropValue{"LoadAvg": {Dynamic: monRef}}
		svcRef := wire.ObjRef{Endpoint: fmt.Sprintf("inproc|svc-%d", i), Key: "svc"}
		if _, err := tr.Export("S", svcRef, props); err != nil {
			b.Fatal(err)
		}
	}
	ctx := context.Background()
	query := func() {
		rs, err := tr.Query(ctx, "S", "LoadAvg < 5", "min LoadAvg", 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(rs) == 0 {
			b.Fatal("no match")
		}
	}
	query() // warm connections to every monitor host
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		query()
	}
}

func BenchmarkE10RemoteQuery16(b *testing.B)        { benchRemoteQuery(b, 16, 4, 0) }
func BenchmarkE10RemoteQuery64(b *testing.B)        { benchRemoteQuery(b, 64, 4, 0) }
func BenchmarkE10RemoteQuery256(b *testing.B)       { benchRemoteQuery(b, 256, 4, 0) }
func BenchmarkE10RemoteQuery64Serial(b *testing.B)  { benchRemoteQuery(b, 64, 4, 1) }
func BenchmarkE10RemoteQuery256Serial(b *testing.B) { benchRemoteQuery(b, 256, 4, 1) }

// ---- E6 ----

func BenchmarkE6RelaxedRequery(b *testing.B) {
	cfg := experiment.RelaxConfig{OverloadTicks: 5, ReliefTicks: 5}
	for i := 0; i < b.N; i++ {
		rs, err := experiment.RelaxedRequery(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			if r.Strategy == "relax" {
				b.ReportMetric(float64(r.QueriesOverload), "relax-queries")
			}
		}
	}
}

// ---- E7: script overhead ----

func BenchmarkE7ScriptCompilePredicate(b *testing.B) {
	in := script.New(script.Options{})
	src := "return " + monitor.LoadIncreasePredicateSrc(50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := in.Compile("pred", src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7ScriptPredicateEval(b *testing.B) {
	in := script.New(script.Options{})
	vs, err := in.Eval("pred", "return "+monitor.LoadIncreasePredicateSrc(50))
	if err != nil {
		b.Fatal(err)
	}
	fn := vs[0]
	mon := script.NewTable()
	mon.SetString("getAspectValue", script.Func("getAspectValue", func(_ *script.Interp, _ []script.Value) ([]script.Value, error) {
		return []script.Value{script.String("yes")}, nil
	}))
	val := script.TableVal(script.NewList(script.Number(60), script.Number(40), script.Number(30)))
	args := []script.Value{script.Nil(), val, script.TableVal(mon)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := in.Call(fn, args)
		if err != nil {
			b.Fatal(err)
		}
		if !out[0].Truthy() {
			b.Fatal("predicate should fire")
		}
	}
}

func BenchmarkE7NativePredicateEval(b *testing.B) {
	// The same predicate hand-written in Go, for the overhead ratio.
	aspect := func() string { return "yes" }
	pred := func(value []float64) bool {
		return value[0] > 50 && aspect() == "yes"
	}
	val := []float64{60, 40, 30}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !pred(val) {
			b.Fatal("predicate should fire")
		}
	}
}

func BenchmarkE7ScriptFig7Strategy(b *testing.B) {
	in := script.New(script.Options{})
	vs, err := in.Eval("fig7", `return function(self)
		self._loadavg = self._loadavgmon:getValue()
		local query
		query = "LoadAvg < 50 and LoadAvgIncreasing == no"
		if not self:_select(query) then
			return "relaxed"
		end
		return "switched"
	end`)
	if err != nil {
		b.Fatal(err)
	}
	fn := vs[0]
	mon := script.NewTable()
	mon.SetString("getValue", script.Func("getValue", func(_ *script.Interp, _ []script.Value) ([]script.Value, error) {
		return []script.Value{script.TableVal(script.NewList(script.Number(60)))}, nil
	}))
	self := script.NewTable()
	self.SetString("_loadavgmon", script.TableVal(mon))
	self.SetString("_select", script.Func("_select", func(_ *script.Interp, _ []script.Value) ([]script.Value, error) {
		return []script.Value{script.Bool(true)}, nil
	}))
	args := []script.Value{script.TableVal(self)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := in.Call(fn, args); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E12: strategy event throughput — install-once vs per-event re-parse ----

// e12StrategySrc is a Fig. 7-shaped strategy: it reads the bound monitor
// over the ORB, builds a constraint from thresholds, smooths the load
// history, and branches on the result. Its length is representative of
// the paper's listings — which is what makes per-event re-parsing costly.
const e12StrategySrc = `function(self)
	self._loadavg = self._loadavgmon:getValue()
	local threshold = 50
	local relaxstep = 10
	local history = self._history or {}
	history[#history + 1] = self._loadavg
	if #history > 8 then
		local trimmed = {}
		for i = 2, #history do
			trimmed[i - 1] = history[i]
		end
		history = trimmed
	end
	self._history = history
	local sum = 0
	for i = 1, #history do
		sum = sum + history[i]
	end
	local smoothed = sum / #history
	local query = "LoadAvg < " .. threshold .. " and LoadAvgIncreasing == no"
	if smoothed >= threshold + relaxstep then
		return "overloaded", query
	elseif smoothed >= threshold then
		return "watch", "LoadAvg < " .. (threshold + relaxstep)
	end
	return "ok"
end`

// benchE12Proxy builds a bound smart proxy whose offer carries a dynamic
// LoadAvg property, so script strategies see a live self._loadavgmon.
func benchE12Proxy(b *testing.B) (*core.SmartProxy, *orb.Client, wire.ObjRef) {
	n := orb.NewInprocNetwork()
	srv, err := orb.NewServer(orb.ServerOptions{Network: n, Address: "b12"})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	svcRef := srv.Register("svc", "", echoServantBench())
	monRef := srv.Register("mon", "", orb.ServantFunc(func(op string, args []wire.Value) ([]wire.Value, error) {
		if op != "getValue" {
			return nil, fmt.Errorf("monitor: no such operation %q", op)
		}
		return []wire.Value{wire.Number(60)}, nil
	}))
	client := orb.NewClient(n)
	b.Cleanup(func() { client.Close() })
	client.RegisterLocal(srv) // collocated fast path, as a real agent host
	sp, err := core.New(core.Options{Client: client})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sp.Close)
	err = sp.BindTo(context.Background(), trading.QueryResult{Offer: trading.Offer{
		ID:  "offer-12",
		Ref: svcRef,
		Props: map[string]trading.PropValue{
			"LoadAvg": {Dynamic: monRef},
		},
	}})
	if err != nil {
		b.Fatal(err)
	}
	return sp, client, monRef
}

// BenchmarkE12StrategyEventInstallOnce is the shipped path: the strategy
// source compiles once at SetScriptStrategy time (through the chunk cache)
// and every event activation just Calls the cached closure.
func BenchmarkE12StrategyEventInstallOnce(b *testing.B) {
	sp, _, _ := benchE12Proxy(b)
	if err := sp.SetScriptStrategy("LoadIncrease", e12StrategySrc); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.OnEvent("LoadIncrease")
		if err := sp.Adapt(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12StrategyEventReparse reproduces the pre-cache behavior the
// seed had (scriptstrategy.go evaluated `return <src>` on every event): a
// cache-disabled interpreter re-lexes, re-parses, and re-resolves the
// strategy source per activation before calling it. The self stub mirrors
// what buildScriptSelf provides — a monitor object whose getValue invokes
// the real monitor servant over the ORB — so the two benchmarks differ
// only in compile work.
func BenchmarkE12StrategyEventReparse(b *testing.B) {
	sp, client, monRef := benchE12Proxy(b)
	in := script.New(script.Options{CacheSize: -1})
	ctx := context.Background()
	sp.SetStrategy("LoadIncrease", func(ctx context.Context, _ *core.SmartProxy) error {
		vs, err := in.Eval("strategy:LoadIncrease", "return "+e12StrategySrc)
		if err != nil {
			return err
		}
		mon := script.NewTable()
		mon.SetString("getValue", script.Func("monitor.getValue", func(_ *script.Interp, _ []script.Value) ([]script.Value, error) {
			rs, err := client.Invoke(ctx, monRef, "getValue")
			if err != nil {
				return nil, err
			}
			out := make([]script.Value, len(rs))
			for i, v := range rs {
				out[i] = script.FromWire(v)
			}
			return out, nil
		}))
		self := script.NewTable()
		self.SetString("_loadavgmon", script.TableVal(mon))
		_, err = in.Call(vs[0], []script.Value{script.TableVal(self)})
		return err
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.OnEvent("LoadIncrease")
		if err := sp.Adapt(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E8: strategy reuse across service types ----

func BenchmarkE8ReuseAcrossServices(b *testing.B) {
	n := orb.NewInprocNetwork()
	srv, err := orb.NewServer(orb.ServerOptions{Network: n, Address: "b8"})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	helloRef := srv.Register("hello", "", echoServantBench())
	imageRef := srv.Register("image", "", echoServantBench())
	client := orb.NewClient(n)
	defer client.Close()
	ctx := context.Background()

	const strategySrc = `{
		LoadIncrease = function(self)
			-- shared, service-agnostic adaptation code (paper §V)
		end
	}`
	mk := func(ref wire.ObjRef) *core.SmartProxy {
		sp, err := core.New(core.Options{Client: client})
		if err != nil {
			b.Fatal(err)
		}
		if err := sp.SetScriptStrategiesTable(strategySrc); err != nil {
			b.Fatal(err)
		}
		if err := sp.BindTo(ctx, trading.QueryResult{Offer: trading.Offer{ID: "o", Ref: ref}}); err != nil {
			b.Fatal(err)
		}
		return sp
	}
	spHello := mk(helloRef)
	defer spHello.Close()
	spImage := mk(imageRef)
	defer spImage.Close()

	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := spHello
		if i%2 == 1 {
			sp = spImage
		}
		sp.OnEvent("LoadIncrease") // queue + collapse
		if _, err := sp.Invoke(ctx, "op", wire.Int(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E9 ----

// BenchmarkE9FaultedInvoke measures the steady-state overhead of the
// fault-tolerance layer (retry policy armed, invocation deadline set,
// fault-injecting network wrapper in the dial path) when no faults occur.
// Compare against BenchmarkE4InprocORBCall, the same call with the layer
// disabled.
func BenchmarkE9FaultedInvoke(b *testing.B) {
	n := orb.NewInprocNetwork()
	fnet := orb.NewFaultNetwork(n)
	srv, err := orb.NewServer(orb.ServerOptions{Network: n, Address: "b9-faulted"})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ref := srv.Register("echo", "", echoServantBench())
	client := orb.NewClientOpts(orb.ClientOptions{
		Networks:      []orb.Network{fnet},
		Retry:         orb.DefaultRetryPolicy(),
		InvokeTimeout: 5 * time.Second,
	})
	defer client.Close()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := client.Invoke(ctx, ref, "echo", wire.Int(42)); err != nil {
			b.Fatal(err)
		}
	}
}
