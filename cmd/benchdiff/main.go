// Command benchdiff compares `go test -bench` output against a committed
// baseline and fails on performance regressions. It is the engine behind
// `make bench-regression` (the CI perf gate).
//
// Two modes:
//
//	go test -bench . -benchmem ... > bench.txt
//	benchdiff -write -o bench_baseline.json bench.txt   # record a baseline
//	benchdiff -baseline bench_baseline.json bench.txt   # gate against it
//
// Gate rules:
//   - ns/op: fail when the new value exceeds the baseline by more than
//     -threshold percent (default 15). Multiple runs of the same benchmark
//     (-count=N, or the same bench appearing in several input files) are
//     collapsed to the minimum before comparing — min-of-N is the
//     noise-robust estimator for "how fast can this code go", and passing
//     several time-separated run files makes a transient CPU-steal burst
//     on shared runners unable to poison every sample of a bench.
//   - Machine-speed normalization: the baseline records the timing of a
//     fixed CPU-bound calibration loop run inside benchdiff itself; at
//     compare time the loop is re-run and every baseline ns/op is scaled
//     by the now/then ratio. A baseline recorded on one machine class
//     therefore still gates meaningfully on another.
//   - allocs/op: any increase fails. Allocation counts are deterministic
//     for serial benchmarks, so even a +1 is a real regression. Benches
//     above 1000 allocs/op get 0.1% slack for GC-timing jitter.
//   - A benchmark present in the baseline but missing from the run fails:
//     deleting or renaming a bench must be accompanied by a baseline
//     refresh (`make bench-baseline`), not silently dropped from the gate.
//   - Benchmarks matching -ignore are excluded from both recording and
//     comparison; the Makefile uses this for open-loop/concurrency benches
//     whose timings and allocation counts are scheduler-dependent.
//
// Output is a GitHub-flavored markdown delta table (also written to the
// -md file when given, so CI can append it to the job summary). Exit
// status 1 means at least one regression.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

type bench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type baselineFile struct {
	Note             string           `json:"note,omitempty"`
	Threshold        float64          `json:"threshold_pct,omitempty"`
	CalibrationNs    float64          `json:"calibration_ns,omitempty"`
	CalibrationMemNs float64          `json:"calibration_mem_ns,omitempty"`
	Benchmarks       map[string]bench `json:"benchmarks"`
}

// calibrate times two fixed workloads (min of three runs each): a
// register-only FNV-1a loop that tracks raw ALU speed, and a pointer
// walk over an 8 MiB buffer that tracks memory/cache throughput — on
// shared runners a noisy neighbor can slow memory-heavy benchmarks
// without touching ALU speed. The same code runs when the baseline is
// recorded and when it is checked, so the ratios estimate how fast this
// machine is relative to the one that produced the baseline.
func calibrate() (spinNs, memNs float64) {
	spinNs, memNs = math.MaxFloat64, math.MaxFloat64
	// Next-pointer array forming one full random cycle (Sattolo shuffle,
	// fixed LCG seed) so every load misses cache: 8 MiB, far beyond L2.
	n := uint64(1 << 20)
	perm := make([]uint64, n)
	for i := range perm {
		perm[i] = uint64(i)
	}
	rng := uint64(0x9E3779B97F4A7C15)
	for i := n - 1; i > 0; i-- {
		rng = rng*6364136223846793005 + 1442695040888963407
		j := rng % i
		perm[i], perm[j] = perm[j], perm[i]
	}
	buf := make([]uint64, n)
	for k := range perm {
		buf[perm[k]] = perm[(k+1)%len(perm)]
	}
	for r := 0; r < 3; r++ {
		start := time.Now()
		var h uint64 = 1469598103934665603
		for i := 0; i < 20_000_000; i++ {
			h ^= uint64(i)
			h *= 1099511628211
		}
		calSink = h
		if d := float64(time.Since(start).Nanoseconds()); d < spinNs {
			spinNs = d
		}

		start = time.Now()
		idx := uint64(r)
		for i := 0; i < 10_000_000; i++ {
			idx = buf[idx]
		}
		calSink = idx
		if d := float64(time.Since(start).Nanoseconds()); d < memNs {
			memNs = d
		}
	}
	return spinNs, memNs
}

var calSink uint64

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		write     = flag.Bool("write", false, "record a baseline instead of comparing")
		out       = flag.String("o", "bench_baseline.json", "output path for -write")
		basePath  = flag.String("baseline", "", "baseline JSON to compare against")
		threshold = flag.Float64("threshold", 15, "max allowed ns/op increase, percent")
		ignore    = flag.String("ignore", "", "regexp of benchmark names to exclude")
		mdOut     = flag.String("md", "", "also write the markdown delta table to this file")
	)
	flag.Parse()

	var ignoreRe *regexp.Regexp
	if *ignore != "" {
		re, err := regexp.Compile(*ignore)
		if err != nil {
			return fmt.Errorf("bad -ignore regexp: %w", err)
		}
		ignoreRe = re
	}

	got, err := parseInputs(flag.Args(), ignoreRe)
	if err != nil {
		return err
	}
	if len(got) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}

	if *write {
		return writeBaseline(*out, got, *threshold)
	}
	if *basePath == "" {
		return fmt.Errorf("need -baseline (or -write); see -h")
	}
	return compare(*basePath, got, *threshold, *mdOut)
}

// parseInputs reads `go test -bench` output from the named files (or
// stdin when none are given) and returns one entry per benchmark,
// min-collapsed across repeated lines. The trailing -N GOMAXPROCS
// suffix is stripped so baselines transfer across machines.
func parseInputs(paths []string, ignoreRe *regexp.Regexp) (map[string]bench, error) {
	got := make(map[string]bench)
	scan := func(r io.Reader) error {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 1024*1024), 1024*1024)
		for sc.Scan() {
			name, b, ok := parseLine(sc.Text())
			if !ok || (ignoreRe != nil && ignoreRe.MatchString(name)) {
				continue
			}
			if prev, seen := got[name]; seen {
				if prev.NsPerOp < b.NsPerOp {
					b.NsPerOp = prev.NsPerOp
				}
				if prev.AllocsPerOp < b.AllocsPerOp {
					b.AllocsPerOp = prev.AllocsPerOp
				}
			}
			got[name] = b
		}
		return sc.Err()
	}
	if len(paths) == 0 {
		return got, scan(os.Stdin)
	}
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		err = scan(f)
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	return got, nil
}

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseLine parses one benchmark result line, e.g.
//
//	BenchmarkFoo/sub-4   1000  1234 ns/op  12 B/op  3 allocs/op
func parseLine(line string) (string, bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", bench{}, false
	}
	name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
	var b bench
	haveNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", bench{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
			haveNs = true
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		}
	}
	return name, b, haveNs
}

func writeBaseline(path string, got map[string]bench, threshold float64) error {
	spin, mem := calibrate()
	bf := baselineFile{
		Note: "Committed perf baseline for `make bench-regression`. Regenerate with " +
			"`make bench-baseline` and commit the diff alongside the change that " +
			"moved the numbers. calibration_ns/calibration_mem_ns record fixed " +
			"CPU and memory-walk loops timed on the recording machine; comparisons " +
			"rescale by them, so the file stays meaningful across machine classes.",
		Threshold:        threshold,
		CalibrationNs:    spin,
		CalibrationMemNs: mem,
		Benchmarks:       got,
	}
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d benchmarks\n", path, len(got))
	return nil
}

func compare(basePath string, got map[string]bench, threshold float64, mdOut string) error {
	data, err := os.ReadFile(basePath)
	if err != nil {
		return err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return fmt.Errorf("%s: %w", basePath, err)
	}
	if bf.Threshold > 0 {
		threshold = bf.Threshold
	}

	// Rescale the baseline to this machine's speed: the worse of the ALU
	// and memory-walk ratios, since a noisy neighbor can degrade memory
	// throughput without touching ALU speed. Clamped so a wildly broken
	// calibration can never silently disable the gate.
	speed := 1.0
	if bf.CalibrationNs > 0 {
		spin, mem := calibrate()
		speed = spin / bf.CalibrationNs
		if bf.CalibrationMemNs > 0 {
			speed = math.Max(speed, mem/bf.CalibrationMemNs)
		}
		speed = math.Min(4, math.Max(0.25, speed))
	}

	names := make([]string, 0, len(bf.Benchmarks))
	for name := range bf.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var buf strings.Builder
	fmt.Fprintf(&buf, "### bench-regression: %d benchmarks vs %s (ns/op gate: +%.0f%% after ×%.2f machine-speed rescale; allocs/op gate: any increase)\n\n",
		len(names), basePath, threshold, speed)
	buf.WriteString("| benchmark | base ns/op | new ns/op | Δ ns/op | base allocs/op | new allocs/op | verdict |\n")
	buf.WriteString("|---|---:|---:|---:|---:|---:|---|\n")

	failures := 0
	for _, name := range names {
		base := bf.Benchmarks[name]
		base.NsPerOp *= speed
		now, ok := got[name]
		if !ok {
			fmt.Fprintf(&buf, "| %s | %s | — | — | %d | — | **FAIL: missing from run** |\n",
				name, fmtNs(base.NsPerOp), base.AllocsPerOp)
			failures++
			continue
		}
		deltaPct := 0.0
		if base.NsPerOp > 0 {
			deltaPct = (now.NsPerOp - base.NsPerOp) / base.NsPerOp * 100
		}
		verdict := "ok"
		if deltaPct > threshold {
			verdict = fmt.Sprintf("**FAIL: ns/op +%.1f%% > +%.0f%%**", deltaPct, threshold)
			failures++
		}
		// Any alloc increase fails; benches above 1000 allocs/op get 0.1%
		// slack, since GC-timing jitter (pool refills, map rehash) can move
		// an interpreter-scale count by ±1 without a code change.
		if now.AllocsPerOp > base.AllocsPerOp+base.AllocsPerOp/1000 {
			if verdict == "ok" {
				verdict = ""
			} else {
				verdict += " "
			}
			verdict += fmt.Sprintf("**FAIL: allocs/op %d → %d**", base.AllocsPerOp, now.AllocsPerOp)
			failures++
		}
		fmt.Fprintf(&buf, "| %s | %s | %s | %+.1f%% | %d | %d | %s |\n",
			name, fmtNs(base.NsPerOp), fmtNs(now.NsPerOp), deltaPct, base.AllocsPerOp, now.AllocsPerOp, verdict)
	}

	extra := 0
	for name := range got {
		if _, ok := bf.Benchmarks[name]; !ok {
			extra++
			fmt.Fprintf(&buf, "| %s | — | %s | — | — | %d | new (no baseline — run `make bench-baseline`) |\n",
				name, fmtNs(got[name].NsPerOp), got[name].AllocsPerOp)
		}
	}

	buf.WriteString("\n")
	if failures > 0 {
		fmt.Fprintf(&buf, "**%d regression(s).** If intentional (e.g. a feature that costs an allocation), regenerate the baseline with `make bench-baseline` and commit it with the change.\n", failures)
	} else {
		fmt.Fprintf(&buf, "No regressions. %d benchmark(s) new since the baseline.\n", extra)
	}

	fmt.Print(buf.String())
	if mdOut != "" {
		if err := os.WriteFile(mdOut, []byte(buf.String()), 0o644); err != nil {
			return err
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d benchmark regression(s)", failures)
	}
	return nil
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.1fns", ns)
	}
}
