// Command benchall regenerates every experiment table from DESIGN.md §3
// (E1, E2, E3, E6 — the scenario experiments; E4/E5/E7/E8 are Go
// micro-benchmarks run with `go test -bench`). Output goes to stdout and,
// with -o, to a file; EXPERIMENTS.md records the measured shapes against
// the paper's claims.
//
// Usage:
//
//	benchall            # quick configuration (~seconds)
//	benchall -full      # the full configuration from EXPERIMENTS.md
//	benchall -o out.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"autoadapt/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchall:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		full = flag.Bool("full", false, "run the full-length configurations")
		out  = flag.String("o", "", "also write the report to this file")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	e1 := experiment.LoadShareConfig{
		Servers:        4,
		Clients:        8,
		Duration:       12 * time.Minute,
		Threshold:      3,
		BackgroundLoad: 6,
		BackgroundAt:   4 * time.Minute,
	}
	e2 := experiment.EventVsPollingConfig{}
	e3 := experiment.PostponeConfig{Events: 25}
	e6 := experiment.RelaxConfig{}
	if *full {
		e1.Duration = 30 * time.Minute
		e1.Clients = 16
		e1.Servers = 6
		e2.Duration = 2 * time.Hour
		e3.Events = 60
		e6.OverloadTicks = 20
		e6.ReliefTicks = 20
	}

	fmt.Fprintf(w, "autoadapt experiment report — %s\n\n", time.Now().Format(time.RFC1123))

	t1, _, err := experiment.LoadSharingTable(e1)
	if err != nil {
		return fmt.Errorf("E1: %w", err)
	}
	fmt.Fprintln(w, t1.Render())

	t2, _, err := experiment.EventVsPollingTable(e2)
	if err != nil {
		return fmt.Errorf("E2: %w", err)
	}
	fmt.Fprintln(w, t2.Render())

	t3, _, err := experiment.PostponeTable(e3)
	if err != nil {
		return fmt.Errorf("E3: %w", err)
	}
	fmt.Fprintln(w, t3.Render())

	t6, _, err := experiment.RelaxTable(e6)
	if err != nil {
		return fmt.Errorf("E6: %w", err)
	}
	fmt.Fprintln(w, t6.Render())

	a2 := experiment.StalenessConfig{}
	if *full {
		a2.Duration = 30 * time.Minute
	}
	tA2, _, err := experiment.StalenessTable(a2)
	if err != nil {
		return fmt.Errorf("A2: %w", err)
	}
	fmt.Fprintln(w, tA2.Render())

	e16 := experiment.SLORouteConfig{}
	if *full {
		e16.Duration = 10 * time.Minute
		e16.FaultOff = 5 * time.Minute
	}
	t16, _, err := experiment.SLORoutingTable(e16)
	if err != nil {
		return fmt.Errorf("E16: %w", err)
	}
	fmt.Fprintln(w, t16.Render())

	fmt.Fprintln(w, "micro-benchmarks (E4 invocation paths, E5 trader queries, E7 script overhead,")
	fmt.Fprintln(w, "E8 cross-service reuse): run `go test -bench=. -benchmem .` at the repo root.")
	return nil
}
