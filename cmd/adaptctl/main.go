// Command adaptctl is the dynamic client: the LuaCorba-style interactive
// access to a running deployment. It performs stub-free (DII-style)
// invocations, trader queries, and monitor inspection from the shell.
//
// Usage:
//
//	adaptctl -trader 'tcp|127.0.0.1:9050/Trader' types
//	adaptctl -trader ... query LoadShared "LoadAvg < 2" "min LoadAvg"
//	adaptctl -trader ... shards               # sharded-trader placement/stats
//	adaptctl -trader ... metrics              # trader-side metrics exposition
//	adaptctl -trader ... renew offer-3        # extend an offer's lease
//	adaptctl -breaker-threshold 3 invoke ...  # fail fast on dead endpoints
//	adaptctl invoke 'tcp|127.0.0.1:41234/service' hello
//	adaptctl invoke 'tcp|host:port/service' work 0.25
//	adaptctl monitor 'tcp|host:port/monitor/LoadAvg'
//	adaptctl aspect  'tcp|host:port/monitor/LoadAvg' Increasing
//	adaptctl define  'tcp|host:port/monitor/LoadAvg' Load15 'function(self,v,m) return v[3] end'
//
// Arguments to invoke are parsed as numbers when possible, as booleans for
// true/false, and as strings otherwise.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"autoadapt/internal/orb"
	"autoadapt/internal/trading"
	"autoadapt/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adaptctl:", err)
		os.Exit(1)
	}
}

func run() error {
	traderRef := flag.String("trader", "tcp|127.0.0.1:9050/Trader", "trader object reference")
	timeout := flag.Duration("timeout", 10*time.Second, "per-invocation deadline (0 disables)")
	retries := flag.Int("retries", 3, "max invocation attempts on connection faults")
	backoff := flag.Duration("retry-backoff", 50*time.Millisecond, "base retry backoff (doubles per attempt)")
	brkThreshold := flag.Int("breaker-threshold", 0, "consecutive endpoint failures that open the circuit breaker (0 disables)")
	brkCooldown := flag.Duration("breaker-cooldown", time.Second, "how long an open circuit waits before probing the endpoint again")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		return fmt.Errorf("usage: adaptctl [flags] types|query|renew|shards|metrics|invoke|monitor|aspect|define <args>")
	}

	client := orb.NewClientOpts(orb.ClientOptions{
		Networks: []orb.Network{orb.TCPNetwork{}},
		Retry: orb.RetryPolicy{
			MaxAttempts: *retries,
			BaseBackoff: *backoff,
			Jitter:      0.2,
		},
		Breaker: orb.BreakerPolicy{
			Threshold: *brkThreshold,
			Cooldown:  *brkCooldown,
		},
		InvokeTimeout: *timeout,
	})
	defer client.Close()
	ctx := context.Background()

	switch args[0] {
	case "types":
		ref, err := wire.ParseObjRef(*traderRef)
		if err != nil {
			return err
		}
		rs, err := client.Invoke(ctx, ref, "listTypes")
		if err != nil {
			return err
		}
		if tb, ok := rs[0].AsTable(); ok {
			for i := 1; i <= tb.Len(); i++ {
				fmt.Println(tb.Index(i).Str())
			}
		}
		return nil
	case "query":
		if len(args) < 2 {
			return fmt.Errorf("usage: adaptctl query <type> [constraint] [preference]")
		}
		ref, err := wire.ParseObjRef(*traderRef)
		if err != nil {
			return err
		}
		constraint, preference := "", ""
		if len(args) > 2 {
			constraint = args[2]
		}
		if len(args) > 3 {
			preference = args[3]
		}
		lookup := trading.NewLookup(client, ref)
		results, err := lookup.Query(ctx, args[1], constraint, preference, 0)
		if err != nil {
			return err
		}
		if len(results) == 0 {
			fmt.Println("no matching offers")
			return nil
		}
		for _, r := range results {
			fmt.Printf("%s  %s\n", r.Offer.ID, r.Offer.Ref)
			for name, v := range r.Snapshot {
				fmt.Printf("    %-20s %s\n", name, v)
			}
		}
		return nil
	case "shards":
		ref, err := wire.ParseObjRef(*traderRef)
		if err != nil {
			return err
		}
		rs, err := client.Invoke(ctx, ref, "shardStatus")
		if err != nil {
			return err
		}
		printShardStatus(rs[0])
		return nil
	case "metrics":
		ref, err := wire.ParseObjRef(*traderRef)
		if err != nil {
			return err
		}
		rs, err := client.Invoke(ctx, ref, "metrics")
		if err != nil {
			return err
		}
		fmt.Print(rs[0].Str())
		return nil
	case "renew":
		if len(args) < 2 {
			return fmt.Errorf("usage: adaptctl renew <offer-id>")
		}
		ref, err := wire.ParseObjRef(*traderRef)
		if err != nil {
			return err
		}
		lookup := trading.NewLookup(client, ref)
		if err := lookup.Renew(ctx, args[1]); err != nil {
			return err
		}
		fmt.Println("lease renewed")
		return nil
	case "invoke":
		if len(args) < 3 {
			return fmt.Errorf("usage: adaptctl invoke <objref> <op> [args...]")
		}
		ref, err := wire.ParseObjRef(args[1])
		if err != nil {
			return err
		}
		vals := make([]wire.Value, 0, len(args)-3)
		for _, a := range args[3:] {
			vals = append(vals, parseArg(a))
		}
		rs, err := client.Invoke(ctx, ref, args[2], vals...)
		if err != nil {
			return err
		}
		for _, r := range rs {
			fmt.Println(r)
		}
		return nil
	case "monitor":
		if len(args) < 2 {
			return fmt.Errorf("usage: adaptctl monitor <monitor-objref>")
		}
		ref, err := wire.ParseObjRef(args[1])
		if err != nil {
			return err
		}
		val, err := client.Invoke(ctx, ref, "getValue")
		if err != nil {
			return err
		}
		fmt.Println("value:", val[0])
		aspects, err := client.Invoke(ctx, ref, "definedAspects")
		if err != nil {
			return err
		}
		if tb, ok := aspects[0].AsTable(); ok {
			for i := 1; i <= tb.Len(); i++ {
				name := tb.Index(i).Str()
				av, err := client.Invoke(ctx, ref, "getAspectValue", wire.String(name))
				if err != nil {
					return err
				}
				fmt.Printf("aspect %-16s %s\n", name+":", av[0])
			}
		}
		return nil
	case "aspect":
		if len(args) < 3 {
			return fmt.Errorf("usage: adaptctl aspect <monitor-objref> <name>")
		}
		ref, err := wire.ParseObjRef(args[1])
		if err != nil {
			return err
		}
		rs, err := client.Invoke(ctx, ref, "getAspectValue", wire.String(args[2]))
		if err != nil {
			return err
		}
		fmt.Println(rs[0])
		return nil
	case "define":
		if len(args) < 4 {
			return fmt.Errorf("usage: adaptctl define <monitor-objref> <aspect> <code>")
		}
		ref, err := wire.ParseObjRef(args[1])
		if err != nil {
			return err
		}
		_, err = client.Invoke(ctx, ref, "defineAspect", wire.String(args[2]), wire.String(args[3]))
		if err != nil {
			return err
		}
		fmt.Println("aspect defined (shipped code installed at the monitor)")
		return nil
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// printShardStatus renders the shardStatus reply (see shard.Servant for
// the wire layout).
func printShardStatus(v wire.Value) {
	tb, ok := v.AsTable()
	if !ok {
		fmt.Println(v)
		return
	}
	if shards, ok := tb.GetString("shards").AsTable(); ok {
		for i := 1; i <= shards.Len(); i++ {
			sh, ok := shards.Index(i).AsTable()
			if !ok {
				continue
			}
			state := "alive"
			if b, _ := sh.GetString("alive").AsBool(); !b {
				state = "DEAD"
			}
			fmt.Printf("%-10s %-6s replicas=%d", sh.GetString("name").Str(),
				state, int(sh.GetString("replicas").Num()))
			if owned, ok := sh.GetString("owned").AsTable(); ok && owned.Len() > 0 {
				fmt.Print("  owns:")
				for j := 1; j <= owned.Len(); j++ {
					fmt.Printf(" %s", owned.Index(j).Str())
				}
			}
			fmt.Println()
		}
	}
	printCounterTable := func(label string, v wire.Value) {
		sec, ok := v.AsTable()
		if !ok {
			return
		}
		fmt.Printf("%s:", label)
		sec.Pairs(func(k, val wire.Value) bool {
			fmt.Printf(" %s=%v", k.Str(), val)
			return true
		})
		fmt.Println()
	}
	printCounterTable("router", tb.GetString("router"))
	printCounterTable("manager", tb.GetString("manager"))
}

func parseArg(s string) wire.Value {
	if n, err := strconv.ParseFloat(s, 64); err == nil {
		return wire.Number(n)
	}
	switch s {
	case "true":
		return wire.Bool(true)
	case "false":
		return wire.Bool(false)
	case "nil":
		return wire.Nil()
	}
	return wire.String(s)
}
