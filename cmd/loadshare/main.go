// Command loadshare is the paper's §V load-sharing client, runnable
// against a live deployment (cmd/trader + several cmd/agentd instances).
// It creates a smart proxy with the paper's constraint and Fig. 4 watch,
// installs the Fig. 7 re-selection strategy, and calls the service in a
// loop, printing which server answers.
//
// Usage:
//
//	loadshare -trader 'tcp|127.0.0.1:9050/Trader' -type LoadShared \
//	          -limit 2 -calls 50 -interval 1s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"autoadapt"
	"autoadapt/internal/monitor"
	"autoadapt/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadshare:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		traderRef = flag.String("trader", "tcp|127.0.0.1:9050/Trader", "trader object reference")
		svcType   = flag.String("type", "LoadShared", "service type to bind")
		limit     = flag.Float64("limit", 2, "LoadAvg limit in the selection constraint")
		calls     = flag.Int("calls", 50, "number of hello calls to make")
		interval  = flag.Duration("interval", time.Second, "delay between calls")
		callback  = flag.String("callback", "127.0.0.1:0", "TCP address for observer callbacks")
	)
	flag.Parse()

	ref, err := wire.ParseObjRef(*traderRef)
	if err != nil {
		return err
	}
	platform, err := autoadapt.Connect(autoadapt.TCP(), ref, *callback)
	if err != nil {
		return err
	}
	defer platform.Close()

	constraint := fmt.Sprintf("LoadAvg < %g and LoadAvgIncreasing == no", *limit)
	proxy, err := platform.NewSmartProxy(autoadapt.ProxyOptions{
		ServiceType:      *svcType,
		Constraint:       constraint,
		Preference:       "min LoadAvg",
		FallbackSortOnly: true,
		Watches: []autoadapt.Watch{{
			Prop:      "LoadAvg",
			Event:     monitor.LoadIncreaseEvent,
			Predicate: monitor.LoadIncreasePredicateSrc(*limit),
		}},
		Logger: log.New(os.Stderr, "loadshare ", log.Ltime),
	})
	if err != nil {
		return err
	}
	defer proxy.Close()

	// The Fig. 7 strategy as shipped script source, with the limits from
	// the command line standing in for the paper's 50/70.
	err = proxy.SetScriptStrategiesTable(fmt.Sprintf(`{
		LoadIncrease = function(self)
			self._loadavg = self._loadavgmon:getValue()
			local query
			query = "LoadAvg < %g and LoadAvgIncreasing == no"
			if not self:_select(query) then
				self._loadavgmon:attachEventObserver(
					self._observer,
					"LoadIncrease",
					[[function(observer, value, monitor)
						local incr
						incr = monitor:getAspectValue("Increasing")
						return value[1] > %g and incr == "yes"
					end]])
			end
		end
	}`, *limit, *limit*1.4))
	if err != nil {
		return err
	}

	ctx := context.Background()
	if err := proxy.Bind(ctx); err != nil {
		return err
	}
	cur, _ := proxy.Current()
	fmt.Println("bound to", cur)

	last := cur
	for i := 1; i <= *calls; i++ {
		rs, err := proxy.Invoke(ctx, "hello")
		if err != nil {
			log.Printf("call %d failed: %v", i, err)
			time.Sleep(*interval)
			continue
		}
		now, _ := proxy.Current()
		if now != last {
			fmt.Printf("  [adaptation] switched: %v → %v\n", last, now)
			last = now
		}
		fmt.Printf("call %3d: %s\n", i, rs[0].Str())
		time.Sleep(*interval)
	}
	st := proxy.Stats()
	fmt.Printf("\n%d calls, %d events handled, %d switches, %d trader queries\n",
		st.Invocations, st.EventsHandled, st.Switches, st.Selections)
	return nil
}
