// Command agentd runs a service agent on a host: it serves a demo service
// (hello + work), runs the paper's Fig. 3 LoadAvg monitor against either
// the real /proc/loadavg or a simulated host, and exports an offer with
// dynamic load properties to a trader (cmd/trader).
//
// Usage:
//
//	agentd -listen 127.0.0.1:0 -trader 'tcp|127.0.0.1:9050/Trader' \
//	       -name host-a -load proc            # real /proc/loadavg
//	agentd ... -load sim:2.5                  # simulated constant load
//
// An optional AdaptScript configuration file (-config) customizes the
// monitor and offer at start, the way the paper's Lua agents do.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"autoadapt"
	"autoadapt/internal/monitor"
	"autoadapt/internal/orb"
	"autoadapt/internal/script"
	"autoadapt/internal/trading"
	"autoadapt/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "agentd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", "127.0.0.1:0", "TCP address to listen on")
		traderRef = flag.String("trader", "tcp|127.0.0.1:9050/Trader", "trader object reference")
		svcType   = flag.String("type", "LoadShared", "service type to export")
		name      = flag.String("name", "", "host name (defaults to the listen endpoint)")
		loadSpec  = flag.String("load", "proc", `load source: "proc", "proc:<path>", or "sim:<value>"`)
		period    = flag.Duration("period", time.Minute, "monitor update period (paper: 60s)")
		leaseTTL  = flag.Duration("lease-ttl", 0, "trader's offer lease TTL; enables the renewal heartbeat (0 disables)")
		config    = flag.String("config", "", "AdaptScript agent configuration file")
		maxConc   = flag.Int("max-concurrent", 0, "dispatch pool size: max concurrently served requests (0 = ORB default, negative = unbounded)")
		clockBud  = flag.Duration("script-clock-budget", 0, "wall-clock budget per script evaluation (config, aspects, predicates; 0 = unbounded)")
		memBud    = flag.Int64("script-mem-budget", 0, "accounted-allocation budget in bytes per script evaluation (0 = unbounded)")
		scriptEng = flag.String("script-engine", "vm", `AdaptScript engine: "vm" (bytecode, default) or "treewalk" (reference interpreter)`)
	)
	flag.Parse()

	engine, err := script.ParseEngine(*scriptEng)
	if err != nil {
		return err
	}
	ref, err := wire.ParseObjRef(*traderRef)
	if err != nil {
		return err
	}
	source, err := parseLoadSource(*loadSpec)
	if err != nil {
		return err
	}
	var configSrc string
	if *config != "" {
		b, err := os.ReadFile(*config)
		if err != nil {
			return err
		}
		configSrc = string(b)
	}

	network := autoadapt.TCP()
	client := orb.NewClient(network)
	defer client.Close()
	lookup := trading.NewLookup(client, ref)

	hostName := *name
	servant := autoadapt.ServantFunc(func(op string, args []wire.Value) ([]wire.Value, error) {
		switch op {
		case "hello":
			return []wire.Value{wire.String("hello from " + hostName)}, nil
		case "work":
			// Burn the requested CPU demand for real.
			d := time.Duration(1e9 * args[0].Num())
			start := time.Now()
			for time.Since(start) < d {
			}
			return []wire.Value{wire.Number(time.Since(start).Seconds())}, nil
		default:
			return nil, orb.Appf("no such operation %q", op)
		}
	})

	ctx := context.Background()
	ag, err := autoadapt.StartAgent(ctx, autoadapt.AgentOptions{
		Network:          network,
		Address:          *listen,
		Lookup:           lookup,
		ServiceType:      *svcType,
		Servant:          servant,
		LoadSource:       source,
		MonitorPeriod:    *period,
		LeaseTTL:         *leaseTTL,
		ConfigScript:     configSrc,
		MaxConcurrent:    *maxConc,
		ScriptWallBudget: *clockBud,
		ScriptMemBudget:  *memBud,
		ScriptEngine:     engine,
		StaticProps:      map[string]wire.Value{"Host": wire.String(hostName)},
		Logger:           log.New(os.Stderr, "agentd ", log.LstdFlags),
	})
	if err != nil {
		return err
	}
	if hostName == "" {
		hostName = ag.Endpoint()
	}
	defer func() {
		if err := ag.Close(context.Background()); err != nil {
			log.Printf("agentd: close: %v", err)
		}
	}()

	fmt.Printf("agent ready\n  endpoint: %s\n  service:  %s\n  monitor:  %s\n  offer:    %s\n",
		ag.Endpoint(), ag.ServiceRef(), ag.MonitorRef(), ag.OfferID())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("withdrawing offer and shutting down")
	return nil
}

func parseLoadSource(spec string) (monitor.LoadSource, error) {
	switch {
	case spec == "proc":
		return monitor.ProcFile{}, nil
	case strings.HasPrefix(spec, "proc:"):
		return monitor.ProcFile{Path: spec[len("proc:"):]}, nil
	case strings.HasPrefix(spec, "sim:"):
		v, err := strconv.ParseFloat(spec[len("sim:"):], 64)
		if err != nil {
			return nil, fmt.Errorf("agentd: bad sim load %q", spec)
		}
		return monitor.LoadSourceFunc(func() (float64, float64, float64, error) {
			return v, v, v, nil
		}), nil
	default:
		return nil, fmt.Errorf("agentd: unknown load source %q", spec)
	}
}
