// Command trader runs a standalone trading-service daemon over TCP — the
// central piece of the paper's Fig. 6 architecture.
//
// Usage:
//
//	trader -listen 127.0.0.1:9050 -type LoadShared -type ImageService
//
// Agents export offers to it (cmd/agentd), clients query it (cmd/adaptctl,
// cmd/loadshare). Additional service types can also be added at run time
// through the trader's addType operation.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"autoadapt"
)

type typeList []string

func (t *typeList) String() string { return fmt.Sprint(*t) }
func (t *typeList) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "trader:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen   = flag.String("listen", "127.0.0.1:9050", "TCP address to listen on")
		check    = flag.Bool("check-idl", true, "type-check trader operations against the IDL")
		leaseTTL = flag.Duration("lease-ttl", 0, "offer lease TTL; unrenewed offers expire (0 disables leasing)")
		reap     = flag.Duration("reap-interval", 0, "how often expired offers are collected (default lease-ttl/3)")
		types    typeList
	)
	flag.Var(&types, "type", "service type to register (repeatable)")
	flag.Parse()
	if len(types) == 0 {
		types = typeList{"LoadShared"}
	}

	var sts []autoadapt.ServiceType
	for _, name := range types {
		sts = append(sts, autoadapt.ServiceType{
			Name:  name,
			Props: []string{"LoadAvg", "LoadAvgIncreasing", "Host"},
		})
	}
	h, err := autoadapt.StartTrader(autoadapt.TraderOptions{
		Network:      autoadapt.TCP(),
		Address:      *listen,
		Types:        sts,
		CheckIDL:     *check,
		LeaseTTL:     *leaseTTL,
		ReapInterval: *reap,
		Logger:       log.New(os.Stderr, "trader ", log.LstdFlags),
	})
	if err != nil {
		return err
	}
	defer h.Close()

	fmt.Printf("trading service ready\n  endpoint:  %s\n  reference: %s\n  types:     %v\n",
		h.Endpoint(), h.Ref, types)
	if *leaseTTL > 0 {
		fmt.Printf("  leases:    %v TTL (agents must renew; see agentd -lease-ttl)\n", *leaseTTL)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return nil
}
