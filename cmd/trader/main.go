// Command trader runs a standalone trading-service daemon over TCP — the
// central piece of the paper's Fig. 6 architecture.
//
// Usage:
//
//	trader -listen 127.0.0.1:9050 -type LoadShared -type ImageService
//	trader -shards 4 -standbys 2 -lease-ttl 10s
//
// Agents export offers to it (cmd/agentd), clients query it (cmd/adaptctl,
// cmd/loadshare). Additional service types can also be added at run time
// through the trader's addType operation.
//
// With -shards N > 1 the offer space is partitioned across N in-process
// trader shards behind the shard routing client, served at the same
// well-known object key — clients cannot tell the difference. -standbys
// adds a pool of spare traders the shard manager promotes to read
// replicas of hot shards (see `adaptctl shards` for live placement).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"autoadapt"
)

type typeList []string

func (t *typeList) String() string { return fmt.Sprint(*t) }
func (t *typeList) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "trader:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen   = flag.String("listen", "127.0.0.1:9050", "TCP address to listen on")
		check    = flag.Bool("check-idl", true, "type-check trader operations against the IDL")
		leaseTTL = flag.Duration("lease-ttl", 0, "offer lease TTL; unrenewed offers expire (0 disables leasing)")
		reap     = flag.Duration("reap-interval", 0, "how often expired offers are collected (default lease-ttl/3)")
		shards   = flag.Int("shards", 1, "partition the offer space across N trader shards")
		standbys = flag.Int("standbys", 0, "spare traders available as dynamic read replicas (sharded mode)")
		hotRPS   = flag.Float64("hot-rps", 100, "per-shard query RPS above which a read replica is attached")
		maxConc  = flag.Int("max-concurrent", 0, "dispatch pool size: max concurrently served requests (0 = ORB default, negative = unbounded)")
		resolveT = flag.Duration("resolve-timeout", 0, "cap on each query's dynamic-property resolution phase (0 = caller deadline only)")
		metrics  = flag.Bool("metrics", true, "instrument the daemon and serve the registry via the metrics operation (adaptctl metrics)")
		scrEng   = flag.String("script-engine", "vm", `AdaptScript engine name, validated for fleet-launcher uniformity ("vm" or "treewalk"); the trader itself evaluates no AdaptScript`)
		types    typeList
	)
	flag.Var(&types, "type", "service type to register (repeatable)")
	flag.Parse()
	// The trader runs no shipped scripts — constraint/preference evaluation
	// is the trading package's own query language — but fleet launchers pass
	// one flag set to every daemon, so accept and validate the engine name
	// here rather than failing only on the trader.
	if _, err := autoadapt.ParseScriptEngine(*scrEng); err != nil {
		return err
	}
	if len(types) == 0 {
		types = typeList{"LoadShared"}
	}

	var sts []autoadapt.ServiceType
	for _, name := range types {
		sts = append(sts, autoadapt.ServiceType{
			Name:  name,
			Props: []string{"LoadAvg", "LoadAvgIncreasing", "Host"},
		})
	}
	logger := log.New(os.Stderr, "trader ", log.LstdFlags)
	var reg *autoadapt.MetricsRegistry
	if *metrics {
		reg = autoadapt.NewMetricsRegistry()
	}
	var (
		endpoint string
		ref      autoadapt.ObjRef
		closer   interface{ Close() error }
	)
	if *shards > 1 {
		h, err := autoadapt.StartShardedTrader(autoadapt.ShardedTraderOptions{
			Network:        autoadapt.TCP(),
			Address:        *listen,
			Shards:         *shards,
			Standbys:       *standbys,
			Types:          sts,
			CheckIDL:       *check,
			LeaseTTL:       *leaseTTL,
			ReapInterval:   *reap,
			HotRPS:         *hotRPS,
			MaxConcurrent:  *maxConc,
			ResolveTimeout: *resolveT,
			Metrics:        reg,
			Logger:         logger,
		})
		if err != nil {
			return err
		}
		endpoint, ref, closer = h.Endpoint(), h.Ref, h
	} else {
		h, err := autoadapt.StartTrader(autoadapt.TraderOptions{
			Network:        autoadapt.TCP(),
			Address:        *listen,
			Types:          sts,
			CheckIDL:       *check,
			LeaseTTL:       *leaseTTL,
			ReapInterval:   *reap,
			MaxConcurrent:  *maxConc,
			ResolveTimeout: *resolveT,
			Metrics:        reg,
			Logger:         logger,
		})
		if err != nil {
			return err
		}
		endpoint, ref, closer = h.Endpoint(), h.Ref, h
	}
	defer closer.Close()

	fmt.Printf("trading service ready\n  endpoint:  %s\n  reference: %s\n  types:     %v\n",
		endpoint, ref, types)
	if *shards > 1 {
		fmt.Printf("  shards:    %d (+%d standby replicas); inspect with: adaptctl shards\n",
			*shards, *standbys)
	}
	if *leaseTTL > 0 {
		fmt.Printf("  leases:    %v TTL (agents must renew; see agentd -lease-ttl)\n", *leaseTTL)
	}
	if *metrics {
		fmt.Printf("  metrics:   enabled; inspect with: adaptctl -trader '%s' metrics\n", ref)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return nil
}
